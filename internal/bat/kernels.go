// Bulk column-at-a-time kernels: the paper's §2.2 argument is that
// array operations map onto BAT operators that "run at top speed"
// because they process one dense C-array per operator instead of one
// cell per interpreter step. Each kernel consumes whole vectors (plus
// a validity bitmap) and produces a fresh vector; inputs are never
// mutated, so concurrent workers may share them. NULL semantics follow
// the SQL rules of internal/expr.Apply exactly: NULL operands
// propagate, integer and float division (and modulo) by zero yield
// NULL, comparisons with NULL yield NULL, and AND/OR use three-valued
// logic.
package bat

import (
	"math"
	"math/bits"
	"slices"

	"repro/internal/value"
)

// unionNulls ORs two validity bitmaps; nil-ish inputs cost nothing.
func unionNulls(a, b nullset) nullset {
	if len(a.bits) == 0 {
		return b.clone()
	}
	if len(b.bits) == 0 {
		return a.clone()
	}
	long, short := a.bits, b.bits
	if len(short) > len(long) {
		long, short = short, long
	}
	out := append([]uint64(nil), long...)
	for i, w := range short {
		out[i] |= w
	}
	return nullset{bits: out}
}

// NullCount counts the NULL elements of a vector.
func NullCount(v Vector) int {
	switch t := v.(type) {
	case *IntVector:
		return popcount(t.nulls)
	case *FloatVector:
		return popcount(t.nulls)
	case *BoolVector:
		return popcount(t.nulls)
	case *StringVector:
		return popcount(t.nulls)
	default:
		n := 0
		for i := 0; i < v.Len(); i++ {
			if v.IsNull(i) {
				n++
			}
		}
		return n
	}
}

// popcount counts the marked positions; bits past a vector's length
// are never set (set is only called with in-range indexes), so no
// tail masking is needed.
func popcount(n nullset) int {
	c := 0
	for _, w := range n.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// HasNonNull reports whether the vector holds at least one non-NULL
// element.
func HasNonNull(v Vector) bool { return v.Len() > NullCount(v) }

// --- integer arithmetic ------------------------------------------------------

func AddInt64(a, b *IntVector) *IntVector {
	n := len(a.data)
	out := &IntVector{typ: value.Int, data: make([]int64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

func SubInt64(a, b *IntVector) *IntVector {
	n := len(a.data)
	out := &IntVector{typ: value.Int, data: make([]int64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

func MulInt64(a, b *IntVector) *IntVector {
	n := len(a.data)
	out := &IntVector{typ: value.Int, data: make([]int64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// DivInt64 divides elementwise; division by zero yields NULL (the SQL
// convention the interpreter follows).
func DivInt64(a, b *IntVector) *IntVector {
	n := len(a.data)
	out := &IntVector{typ: value.Int, data: make([]int64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		if b.data[i] == 0 {
			out.nulls.set(i)
			continue
		}
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

func ModInt64(a, b *IntVector) *IntVector {
	n := len(a.data)
	out := &IntVector{typ: value.Int, data: make([]int64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		if b.data[i] == 0 {
			out.nulls.set(i)
			continue
		}
		out.data[i] = a.data[i] % b.data[i]
	}
	return out
}

// Const variants avoid materializing broadcast vectors for the very
// common <column> op <literal> shape. The C suffix marks the constant
// side; SubCInt64/DivCInt64/ModCInt64 put the constant on the left.

func AddInt64C(a *IntVector, c int64) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = x + c
	}
	return out
}

func SubInt64C(a *IntVector, c int64) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = x - c
	}
	return out
}

func SubCInt64(c int64, a *IntVector) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = c - x
	}
	return out
}

func MulInt64C(a *IntVector, c int64) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = x * c
	}
	return out
}

func DivInt64C(a *IntVector, c int64) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	if c == 0 {
		for i := range a.data {
			out.nulls.set(i)
		}
		return out
	}
	for i, x := range a.data {
		out.data[i] = x / c
	}
	return out
}

func DivCInt64(c int64, a *IntVector) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		if x == 0 {
			out.nulls.set(i)
			continue
		}
		out.data[i] = c / x
	}
	return out
}

func ModInt64C(a *IntVector, c int64) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	if c == 0 {
		for i := range a.data {
			out.nulls.set(i)
		}
		return out
	}
	for i, x := range a.data {
		out.data[i] = x % c
	}
	return out
}

func ModCInt64(c int64, a *IntVector) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		if x == 0 {
			out.nulls.set(i)
			continue
		}
		out.data[i] = c % x
	}
	return out
}

// --- float arithmetic --------------------------------------------------------

func AddFloat64(a, b *FloatVector) *FloatVector {
	n := len(a.data)
	out := &FloatVector{data: make([]float64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

func SubFloat64(a, b *FloatVector) *FloatVector {
	n := len(a.data)
	out := &FloatVector{data: make([]float64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

func MulFloat64(a, b *FloatVector) *FloatVector {
	n := len(a.data)
	out := &FloatVector{data: make([]float64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

func DivFloat64(a, b *FloatVector) *FloatVector {
	n := len(a.data)
	out := &FloatVector{data: make([]float64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		if b.data[i] == 0 {
			out.nulls.set(i)
			continue
		}
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

func ModFloat64(a, b *FloatVector) *FloatVector {
	n := len(a.data)
	out := &FloatVector{data: make([]float64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		if b.data[i] == 0 {
			out.nulls.set(i)
			continue
		}
		out.data[i] = math.Mod(a.data[i], b.data[i])
	}
	return out
}

func AddFloat64C(a *FloatVector, c float64) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = x + c
	}
	return out
}

func SubFloat64C(a *FloatVector, c float64) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = x - c
	}
	return out
}

func SubCFloat64(c float64, a *FloatVector) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = c - x
	}
	return out
}

func MulFloat64C(a *FloatVector, c float64) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = x * c
	}
	return out
}

func DivFloat64C(a *FloatVector, c float64) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	if c == 0 {
		for i := range a.data {
			out.nulls.set(i)
		}
		return out
	}
	for i, x := range a.data {
		out.data[i] = x / c
	}
	return out
}

func DivCFloat64(c float64, a *FloatVector) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		if x == 0 {
			out.nulls.set(i)
			continue
		}
		out.data[i] = c / x
	}
	return out
}

func ModFloat64C(a *FloatVector, c float64) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	if c == 0 {
		for i := range a.data {
			out.nulls.set(i)
		}
		return out
	}
	for i, x := range a.data {
		out.data[i] = math.Mod(x, c)
	}
	return out
}

func ModCFloat64(c float64, a *FloatVector) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		if x == 0 {
			out.nulls.set(i)
			continue
		}
		out.data[i] = math.Mod(c, x)
	}
	return out
}

// --- unary and scalar-function kernels ---------------------------------------

func NegInt64(a *IntVector) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = -x
	}
	return out
}

func NegFloat64(a *FloatVector) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = -x
	}
	return out
}

func AbsInt64(a *IntVector) *IntVector {
	out := &IntVector{typ: value.Int, data: make([]int64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		if x < 0 {
			x = -x
		}
		out.data[i] = x
	}
	return out
}

func AbsFloat64(a *FloatVector) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = math.Abs(x)
	}
	return out
}

// MapFloat64 applies a pure float function elementwise (the SQRT/EXP/
// LN/trig builtin family).
func MapFloat64(f func(float64) float64, a *FloatVector) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = f(x)
	}
	return out
}

// PowFloat64 is POWER(a, b) elementwise.
func PowFloat64(a, b *FloatVector) *FloatVector {
	n := len(a.data)
	out := &FloatVector{data: make([]float64, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = math.Pow(a.data[i], b.data[i])
	}
	return out
}

func PowFloat64C(a *FloatVector, c float64) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = math.Pow(x, c)
	}
	return out
}

func PowCFloat64(c float64, a *FloatVector) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = math.Pow(c, x)
	}
	return out
}

// ToFloat64 promotes an integer (or timestamp) vector to float, the
// way value.AsFloat does inside mixed-type arithmetic.
func ToFloat64(a *IntVector) *FloatVector {
	out := &FloatVector{data: make([]float64, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = float64(x)
	}
	return out
}

// --- comparisons -------------------------------------------------------------

// cmpTrue maps a three-way comparison result onto the operator.
func cmpTrue(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

func cmp3i(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmp3f mirrors value.Compare on floats: NaN compares equal to
// everything (neither < nor > holds), exactly like the interpreter.
func cmp3f(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// CmpInt64 compares elementwise with SQL semantics: NULL operands
// yield NULL.
func CmpInt64(op string, a, b *IntVector) *BoolVector {
	n := len(a.data)
	out := &BoolVector{data: make([]bool, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = cmpTrue(op, cmp3i(a.data[i], b.data[i]))
	}
	return out
}

func CmpInt64C(op string, a *IntVector, c int64) *BoolVector {
	out := &BoolVector{data: make([]bool, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = cmpTrue(op, cmp3i(x, c))
	}
	return out
}

func CmpFloat64(op string, a, b *FloatVector) *BoolVector {
	n := len(a.data)
	out := &BoolVector{data: make([]bool, n), nulls: unionNulls(a.nulls, b.nulls)}
	for i := 0; i < n; i++ {
		out.data[i] = cmpTrue(op, cmp3f(a.data[i], b.data[i]))
	}
	return out
}

func CmpFloat64C(op string, a *FloatVector, c float64) *BoolVector {
	out := &BoolVector{data: make([]bool, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = cmpTrue(op, cmp3f(x, c))
	}
	return out
}

// --- three-valued logic ------------------------------------------------------

// AndBool combines two boolean vectors under SQL three-valued logic:
// false dominates NULL, NULL dominates true.
func AndBool(a, b *BoolVector) *BoolVector {
	n := len(a.data)
	out := &BoolVector{data: make([]bool, n)}
	an, bn := a.nulls.bits != nil, b.nulls.bits != nil
	for i := 0; i < n; i++ {
		lnull := an && a.nulls.get(i)
		rnull := bn && b.nulls.get(i)
		lf := !lnull && !a.data[i]
		rf := !rnull && !b.data[i]
		switch {
		case lf || rf:
			// false
		case lnull || rnull:
			out.nulls.set(i)
		default:
			out.data[i] = true
		}
	}
	return out
}

// OrBool combines two boolean vectors under SQL three-valued logic:
// true dominates NULL, NULL dominates false.
func OrBool(a, b *BoolVector) *BoolVector {
	n := len(a.data)
	out := &BoolVector{data: make([]bool, n)}
	an, bn := a.nulls.bits != nil, b.nulls.bits != nil
	for i := 0; i < n; i++ {
		lnull := an && a.nulls.get(i)
		rnull := bn && b.nulls.get(i)
		lt := !lnull && a.data[i]
		rt := !rnull && b.data[i]
		switch {
		case lt || rt:
			out.data[i] = true
		case lnull || rnull:
			out.nulls.set(i)
		}
	}
	return out
}

// NotBool negates under three-valued logic (NOT NULL is NULL).
func NotBool(a *BoolVector) *BoolVector {
	out := &BoolVector{data: make([]bool, len(a.data)), nulls: a.nulls.clone()}
	for i, x := range a.data {
		out.data[i] = !x
	}
	return out
}

// IsNullVec computes IS [NOT] NULL for any vector type; the result
// carries no NULLs.
func IsNullVec(v Vector, neg bool) *BoolVector {
	n := v.Len()
	out := &BoolVector{data: make([]bool, n)}
	for i := 0; i < n; i++ {
		out.data[i] = v.IsNull(i) != neg
	}
	return out
}

// --- selection vectors -------------------------------------------------------

// TruthSel returns the positions where the vector is truthy under SQL
// WHERE semantics (non-NULL and true; numeric vectors count non-zero
// as true, mirroring value.AsBool). This is the BAT select operator:
// its output is a selection vector for Gather.
func TruthSel(v Vector) []int {
	var out []int
	switch t := v.(type) {
	case *BoolVector:
		hasNulls := t.nulls.bits != nil
		for i, b := range t.data {
			if b && (!hasNulls || !t.nulls.get(i)) {
				out = append(out, i)
			}
		}
	case *IntVector:
		hasNulls := t.nulls.bits != nil
		for i, x := range t.data {
			if x != 0 && (!hasNulls || !t.nulls.get(i)) {
				out = append(out, i)
			}
		}
	case *FloatVector:
		hasNulls := t.nulls.bits != nil
		for i, x := range t.data {
			if x != 0 && (!hasNulls || !t.nulls.get(i)) {
				out = append(out, i)
			}
		}
	default:
		n := v.Len()
		for i := 0; i < n; i++ {
			val := v.Get(i)
			if !val.Null && val.AsBool() {
				out = append(out, i)
			}
		}
	}
	return out
}

// AndSel refines a selection vector: it keeps the positions of sel at
// which v is truthy. Composing TruthSel results this way evaluates a
// conjunction without materializing intermediate boolean columns.
func AndSel(sel []int, v Vector) []int {
	out := sel[:0:len(sel)]
	for _, i := range sel {
		val := v.Get(i)
		if !val.Null && val.AsBool() {
			out = append(out, i)
		}
	}
	return out
}

// --- views, broadcast, concatenation ----------------------------------------

// ViewRange returns a read-only view of elements [lo, hi). When the
// range carries no NULLs the view shares the backing array (zero
// copy); otherwise it falls back to Slice. Views must not be mutated.
func ViewRange(v Vector, lo, hi int) Vector {
	if lo == 0 && hi == v.Len() {
		return v
	}
	switch t := v.(type) {
	case *IntVector:
		if !t.nulls.anyInRange(lo, hi) {
			return &IntVector{typ: t.typ, data: t.data[lo:hi:hi]}
		}
	case *FloatVector:
		if !t.nulls.anyInRange(lo, hi) {
			return &FloatVector{data: t.data[lo:hi:hi]}
		}
	case *BoolVector:
		if !t.nulls.anyInRange(lo, hi) {
			return &BoolVector{data: t.data[lo:hi:hi]}
		}
	case *StringVector:
		if !t.nulls.anyInRange(lo, hi) {
			return &StringVector{data: t.data[lo:hi:hi]}
		}
	case *AnyVector:
		return &AnyVector{typ: t.typ, data: t.data[lo:hi:hi]}
	}
	return v.Slice(lo, hi)
}

// anyInRange reports whether any position in [lo, hi) is marked.
func (n *nullset) anyInRange(lo, hi int) bool {
	if len(n.bits) == 0 {
		return false
	}
	for i := lo; i < hi; i++ {
		if n.get(i) {
			return true
		}
	}
	return false
}

// Broadcast materializes a constant as an n-element vector of type t
// with typed bulk fills (no per-element boxing).
func Broadcast(v value.Value, t value.Type, n int) Vector {
	switch t {
	case value.Int, value.Timestamp:
		out := &IntVector{typ: t, data: make([]int64, n)}
		if v.Null {
			out.nulls = allNulls(n)
		} else {
			x := v.AsInt()
			for i := range out.data {
				out.data[i] = x
			}
		}
		return out
	case value.Float:
		out := &FloatVector{data: make([]float64, n)}
		if v.Null {
			out.nulls = allNulls(n)
		} else {
			x := v.AsFloat()
			for i := range out.data {
				out.data[i] = x
			}
		}
		return out
	case value.Bool:
		out := &BoolVector{data: make([]bool, n)}
		if v.Null {
			out.nulls = allNulls(n)
		} else {
			x := v.AsBool()
			for i := range out.data {
				out.data[i] = x
			}
		}
		return out
	}
	out := New(t, n)
	for i := 0; i < n; i++ {
		out.Append(v)
	}
	return out
}

// allNulls builds a bitmap with exactly the first n positions marked
// (trailing bits stay clear so popcount needs no masking).
func allNulls(n int) nullset {
	if n == 0 {
		return nullset{}
	}
	words := (n + 63) / 64
	b := make([]uint64, words)
	for i := range b {
		b[i] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 {
		b[words-1] = (uint64(1) << uint(rem)) - 1
	}
	return nullset{bits: b}
}

// Grow reserves capacity for at least extra more elements in v, so a
// caller merging many pieces (the parallel chunk-scan collectors)
// reallocates once up front instead of geometrically inside Concat.
// Vector implementations without a reservable backing slice are left
// untouched.
func Grow(v Vector, extra int) Vector {
	switch d := v.(type) {
	case *IntVector:
		d.data = slices.Grow(d.data, extra)
	case *FloatVector:
		d.data = slices.Grow(d.data, extra)
	case *BoolVector:
		d.data = slices.Grow(d.data, extra)
	case *StringVector:
		d.data = slices.Grow(d.data, extra)
	case *AnyVector:
		d.data = slices.Grow(d.data, extra)
	}
	return v
}

// Concat appends src's elements to dst and returns dst. Same-type
// vectors concatenate with bulk slice appends; mixed representations
// fall back to elementwise copy.
func Concat(dst, src Vector) Vector {
	base := dst.Len()
	switch d := dst.(type) {
	case *IntVector:
		if s, ok := src.(*IntVector); ok && s.typ == d.typ {
			d.data = append(d.data, s.data...)
			appendNulls(&d.nulls, &s.nulls, base, len(s.data))
			return d
		}
	case *FloatVector:
		if s, ok := src.(*FloatVector); ok {
			d.data = append(d.data, s.data...)
			appendNulls(&d.nulls, &s.nulls, base, len(s.data))
			return d
		}
	case *BoolVector:
		if s, ok := src.(*BoolVector); ok {
			d.data = append(d.data, s.data...)
			appendNulls(&d.nulls, &s.nulls, base, len(s.data))
			return d
		}
	case *StringVector:
		if s, ok := src.(*StringVector); ok {
			d.data = append(d.data, s.data...)
			appendNulls(&d.nulls, &s.nulls, base, len(s.data))
			return d
		}
	case *AnyVector:
		if s, ok := src.(*AnyVector); ok {
			d.data = append(d.data, s.data...)
			return d
		}
	}
	n := src.Len()
	for i := 0; i < n; i++ {
		dst.Append(src.Get(i))
	}
	return dst
}

func appendNulls(dst, src *nullset, base, n int) {
	if len(src.bits) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		if src.get(i) {
			dst.set(base + i)
		}
	}
}

// AppendInt64 appends a non-NULL int64 without boxing — the fast path
// for building dimension columns during batch assembly.
func (v *IntVector) AppendInt64(x int64) { v.data = append(v.data, x) }
