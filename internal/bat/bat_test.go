package bat

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestVectorTypesRoundTrip(t *testing.T) {
	cases := []struct {
		typ value.Type
		v   value.Value
	}{
		{value.Int, value.NewInt(-5)},
		{value.Float, value.NewFloat(3.25)},
		{value.String, value.NewString("hello")},
		{value.Bool, value.NewBool(true)},
		{value.Timestamp, value.NewTimestamp(1234567)},
	}
	for _, c := range cases {
		v := New(c.typ, 0)
		v.Append(c.v)
		v.Append(value.NewNull(c.typ))
		if got := v.Get(0); !value.Equal(got, c.v) {
			t.Errorf("%s: Get(0) = %v, want %v", c.typ, got, c.v)
		}
		if !v.IsNull(1) || !v.Get(1).Null {
			t.Errorf("%s: NULL round trip failed", c.typ)
		}
		if v.Len() != 2 {
			t.Errorf("%s: Len = %d", c.typ, v.Len())
		}
	}
}

func TestVectorSetOverwrite(t *testing.T) {
	v := New(value.Float, 0)
	v.Append(value.NewFloat(1))
	v.Set(0, value.NewNull(value.Float))
	if !v.IsNull(0) {
		t.Fatal("Set NULL failed")
	}
	v.Set(0, value.NewFloat(2))
	if v.IsNull(0) || v.Get(0).F != 2 {
		t.Fatal("Set over NULL failed")
	}
}

func TestSliceAndGather(t *testing.T) {
	v := New(value.Int, 0)
	for i := int64(0); i < 10; i++ {
		if i == 5 {
			v.Append(value.NewNull(value.Int))
			continue
		}
		v.Append(value.NewInt(i))
	}
	s := v.Slice(4, 7)
	if s.Len() != 3 || s.Get(0).I != 4 || !s.IsNull(1) || s.Get(2).I != 6 {
		t.Fatalf("slice wrong: %v %v %v", s.Get(0), s.Get(1), s.Get(2))
	}
	g := v.Gather([]int{9, 5, 0})
	if g.Get(0).I != 9 || !g.IsNull(1) || g.Get(2).I != 0 {
		t.Fatalf("gather wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := New(value.Int, 0)
	v.Append(value.NewInt(1))
	c := v.Clone()
	v.Set(0, value.NewInt(99))
	if c.Get(0).I != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestBATVirtualHead(t *testing.T) {
	b := NewBAT(NewIntVector([]int64{10, 20, 30}))
	if !b.IsDenseHead() {
		t.Fatal("head should be virtual")
	}
	if b.OID(2) != 2 {
		t.Fatalf("OID(2) = %d", b.OID(2))
	}
	b.HeadBase = 100
	if b.OID(2) != 102 {
		t.Fatalf("OID with base = %d", b.OID(2))
	}
	b.Head = []int64{7, 8, 9}
	if b.IsDenseHead() || b.OID(1) != 8 {
		t.Fatal("materialized head wrong")
	}
}

func TestBATSelect(t *testing.T) {
	b := NewBAT(NewFloatVector([]float64{1, 5, 3, 8, 2}))
	pos := b.SelectRangeFloat(2, 5)
	if len(pos) != 3 {
		t.Fatalf("range select found %d, want 3 (5,3,2)", len(pos))
	}
	pos = b.Select(func(v value.Value) bool { return v.AsFloat() > 4 })
	if len(pos) != 2 {
		t.Fatalf("predicate select found %d, want 2", len(pos))
	}
}

func TestBATHashJoin(t *testing.T) {
	l := NewBAT(NewIntVector([]int64{1, 2, 3, 2}))
	r := NewBAT(NewIntVector([]int64{2, 4, 2}))
	li, ri := l.HashJoin(r)
	if len(li) != 4 || len(ri) != 4 {
		t.Fatalf("join produced %d pairs, want 4 (2x2 matches)", len(li))
	}
	for k := range li {
		if l.Tail.Get(li[k]).I != r.Tail.Get(ri[k]).I {
			t.Errorf("pair %d keys differ", k)
		}
	}
}

func TestBATSortPerm(t *testing.T) {
	b := NewBAT(NewIntVector([]int64{3, 1, 2}))
	b.Tail.Append(value.NewNull(value.Int))
	perm := b.SortPerm()
	// NULL first, then 1, 2, 3.
	if !b.Tail.IsNull(perm[0]) || b.Tail.Get(perm[1]).I != 1 || b.Tail.Get(perm[3]).I != 3 {
		t.Fatalf("sort perm wrong: %v", perm)
	}
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	v := New(value.Float, 0)
	v.Append(value.NewFloat(1))
	v.Append(value.NewNull(value.Float))
	v.Append(value.NewFloat(3))
	b := NewBAT(v)
	check := func(fn string, want float64) {
		t.Helper()
		got, err := b.Aggregate(fn)
		if err != nil {
			t.Fatal(err)
		}
		if got.AsFloat() != want {
			t.Errorf("%s = %v, want %v", fn, got.AsFloat(), want)
		}
	}
	check("SUM", 4)
	check("AVG", 2)
	check("MIN", 1)
	check("MAX", 3)
	check("COUNT", 2)
	if _, err := b.Aggregate("MEDIAN"); err == nil {
		t.Error("unknown aggregate should error")
	}
}

func TestAggEmptyInput(t *testing.T) {
	for _, fn := range []string{"SUM", "AVG", "MIN", "MAX"} {
		a := NewAggState(fn)
		if !a.Result().Null {
			t.Errorf("%s over empty input should be NULL", fn)
		}
	}
	c := NewAggState("COUNT")
	if c.Result().I != 0 {
		t.Error("COUNT over empty input should be 0")
	}
}

func TestAggSumIntStaysInt(t *testing.T) {
	a := NewAggState("SUM")
	a.Add(value.NewInt(2))
	a.Add(value.NewInt(3))
	if r := a.Result(); r.Typ != value.Int || r.I != 5 {
		t.Errorf("int SUM = %v", r)
	}
	a = NewAggState("SUM")
	a.Add(value.NewInt(2))
	a.Add(value.NewFloat(0.5))
	if r := a.Result(); r.Typ != value.Float || r.F != 2.5 {
		t.Errorf("mixed SUM = %v", r)
	}
}

// Property: SUM equals the fold of non-null inputs for any input
// sequence.
func TestAggSumProperty(t *testing.T) {
	f := func(xs []float64) bool {
		a := NewAggState("SUM")
		want := 0.0
		for i, x := range xs {
			if i%7 == 3 {
				a.Add(value.NewNull(value.Float))
				continue
			}
			// Avoid NaN/Inf noise from quick's extremes.
			if x != x || x > 1e100 || x < -1e100 {
				x = 1
			}
			a.Add(value.NewFloat(x))
			want += x
		}
		got := a.Result()
		if want == 0 && got.Null {
			return true // all-null sequence
		}
		diff := got.AsFloat() - want
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromValuesCoerces(t *testing.T) {
	v := FromValues(value.Float, []value.Value{value.NewInt(1), value.NewFloat(2.5), value.NewNull(value.Float)})
	if v.Type() != value.Float || v.Len() != 3 {
		t.Fatal("FromValues shape wrong")
	}
	if v.Get(0).F != 1 || v.Get(1).F != 2.5 || !v.IsNull(2) {
		t.Fatal("FromValues values wrong")
	}
}

func TestMinMaxFloat(t *testing.T) {
	lo, hi, ok := MinMaxFloat([]float64{3, 1, 2})
	if !ok || lo != 1 || hi != 3 {
		t.Fatalf("minmax = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := MinMaxFloat(nil); ok {
		t.Fatal("empty input should report !ok")
	}
}
