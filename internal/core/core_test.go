package core

import (
	"testing"

	"repro/internal/value"
	"repro/internal/workload"
)

func TestSessionStdFunctions(t *testing.T) {
	s := NewSession()
	if err := s.DeclareStdFunctions(); err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(`SELECT noise(100.0, 18.0)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Get(0, 0).AsFloat(); got != 82 {
		t.Errorf("noise = %v, want 82", got)
	}
}

func TestDistanceOverVectors(t *testing.T) {
	s := NewSession()
	if err := s.DeclareStdFunctions(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Run(`
		CREATE ARRAY va (i INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0);
		CREATE ARRAY vb (i INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0);
		UPDATE vb SET v = CASE WHEN i = 0 THEN 3 ELSE 4 END;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(`SELECT distance(va[*], vb[*])`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Get(0, 0).AsFloat(); got != 5 {
		t.Errorf("distance = %v, want 5", got)
	}
}

func TestMarkovBlackBox(t *testing.T) {
	s := NewSession()
	if err := s.DeclareStdFunctions(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Run(`
		CREATE ARRAY tm (x INTEGER DIMENSION[3], y INTEGER DIMENSION[3], f FLOAT DEFAULT 1.0);
		SELECT markov(tm[*][*], 2);
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadLandsatAndQuery(t *testing.T) {
	s := NewSession()
	ls := workload.NewLandsat(7, 16, 1)
	a, err := s.LoadLandsat("landsat", ls)
	if err != nil {
		t.Fatal(err)
	}
	if a.Store.Len() != 7*16*16 {
		t.Fatalf("landsat cells = %d", a.Store.Len())
	}
	ds, err := s.Run(`SELECT count(*) FROM landsat WHERE channel = 3`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Get(0, 0).I; got != 256 {
		t.Errorf("channel slice count = %d, want 256", got)
	}
	ds, err = s.Run(`SELECT landsat[2][5][5].v`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Get(0, 0).AsInt(); got != int64(ls.At(2, 5, 5)) {
		t.Errorf("cell = %d, want %d", got, ls.At(2, 5, 5))
	}
}

func TestLoadWaveformAndGaps(t *testing.T) {
	s := NewSession()
	w := workload.NewWaveform("AASN", 500, 0, 1000, 3, 2, 7)
	if _, err := s.LoadWaveform("samples", w); err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(`
		SELECT [time] FROM samples
		WHERE next(time) - time > ?nominal`,
		map[string]value.Value{"nominal": value.NewInt(1000)})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != len(w.GapStarts) {
		t.Fatalf("gap query found %d, generator injected %d", ds.NumRows(), len(w.GapStarts))
	}
	found := map[int64]bool{}
	for r := 0; r < ds.NumRows(); r++ {
		found[ds.Get(r, 0).I] = true
	}
	for _, g := range w.GapStarts {
		if !found[g] {
			t.Errorf("gap at %d not detected", g)
		}
	}
}

func TestLoadEventsAndBinning(t *testing.T) {
	s := NewSession()
	ev := workload.NewXRayEvents(2000, 64, 2, 3)
	if err := s.LoadEvents("events", ev); err != nil {
		t.Fatal(err)
	}
	_, err := s.Run(`
		CREATE ARRAY ximage (x INTEGER DIMENSION, y INTEGER DIMENSION, v INTEGER DEFAULT 0);
		INSERT INTO ximage SELECT [x], [y], count(*) FROM events GROUP BY x, y;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(`SELECT SUM(v) FROM ximage`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Get(0, 0).AsInt(); got != 2000 {
		t.Errorf("total binned events = %d, want 2000", got)
	}
}

func TestChecksum(t *testing.T) {
	s := NewSession()
	_, err := s.Run(`
		CREATE ARRAY cs (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		UPDATE cs SET v = x;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Engine.Cat.Array("cs")
	if got := Checksum(a, 0); got != 6 {
		t.Errorf("checksum = %v, want 6", got)
	}
}
