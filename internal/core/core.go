// Package core wires the SciQL system together: an engine session with
// the standard black-box function library registered (§6.2), the data
// vault attached (§2.1), and bulk loaders that move synthetic science
// workloads into engine arrays without a per-cell SQL round-trip.
// It is the integration point the public sciql package, the examples
// and the benchmark harness all build on.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/array"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sql/parser"
	"repro/internal/storage"
	"repro/internal/udf"
	"repro/internal/value"
	"repro/internal/vault"
	"repro/internal/workload"
	"repro/sciql"
)

// Session is a fully wired SciQL engine: catalog, executor, vault and
// the standard external function library.
type Session struct {
	Engine *exec.Engine
	Vault  *vault.Vault
	db     *sciql.DB
}

// NewSession creates a session with the standard externals registered.
func NewSession() *Session {
	s := &Session{Engine: exec.New(), Vault: vault.New()}
	s.db = sciql.Wrap(s.Engine)
	s.registerExternals()
	return s
}

// DB exposes the session's engine through the public sciql API —
// streaming cursors (QueryContext/Rows), prepared statements and the
// plan cache — without a second catalog. The examples and tools use
// it for their query loops.
func (s *Session) DB() *sciql.DB { return s.db }

// Run parses and executes a script, returning the last result.
func (s *Session) Run(sql string, params map[string]value.Value) (*exec.Dataset, error) {
	return s.RunContext(context.Background(), sql, params)
}

// RunContext is Run bound to a context: cancellation aborts long
// scans mid-statement and returns ctx.Err().
func (s *Session) RunContext(ctx context.Context, sql string, params map[string]value.Value) (*exec.Dataset, error) {
	stmts, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	var last *exec.Dataset
	for _, st := range stmts {
		ds, err := s.Engine.ExecContext(ctx, st, params)
		if err != nil {
			return nil, err
		}
		last = ds
	}
	return last, nil
}

// registerExternals installs the black-box library the paper's
// examples link in: markov.loop (matrix algebra package), distance
// (feature-vector metric) and noise (DESTRIPE sensor correction).
func (s *Session) registerExternals() {
	// markov.loop: arrives as (array, steps); the engine rebases the
	// array parameter; the implementation marshals to the row-major
	// layout the "library" expects (§6.2's recast).
	s.Engine.RegisterExternal("markov.loop", func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return value.Value{}, fmt.Errorf("markov.loop expects (matrix, steps)")
		}
		a, ok := args[0].A.(*array.Array)
		if !ok {
			return value.Value{}, fmt.Errorf("markov.loop: first argument must be an array")
		}
		steps := int(args[1].AsInt())
		m, err := udf.Marshal2D(a, 0, udf.RowMajor)
		if err != nil {
			return value.Value{}, err
		}
		out := udf.MarkovStep(m, steps)
		res := a.Clone()
		if err := udf.Unmarshal2D(res, 0, out); err != nil {
			return value.Value{}, err
		}
		return value.NewArray(res), nil
	})
	// distance: Euclidean metric between two vectors (§4.4's nearest
	// neighbor search).
	s.Engine.RegisterExternal("distance", func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return value.Value{}, fmt.Errorf("distance expects two vectors")
		}
		va, err := vectorOf(args[0])
		if err != nil {
			return value.Value{}, err
		}
		vb, err := vectorOf(args[1])
		if err != nil {
			return value.Value{}, err
		}
		return value.NewFloat(udf.Euclidean(va, vb)), nil
	})
	// noise: the DESTRIPE per-pixel correction (§7.1.1).
	s.Engine.RegisterExternal("noise", func(args []value.Value) (value.Value, error) {
		if len(args) != 2 {
			return value.Value{}, fmt.Errorf("noise expects (v, delta)")
		}
		if args[0].Null {
			return value.NewNull(value.Float), nil
		}
		return value.NewFloat(udf.Noise(args[0].AsFloat(), args[1].AsFloat())), nil
	})
}

func vectorOf(v value.Value) ([]float64, error) {
	if v.Typ != value.Array || v.Null {
		return nil, fmt.Errorf("expected an array value")
	}
	a, ok := v.A.(*array.Array)
	if !ok {
		return nil, fmt.Errorf("expected an array value")
	}
	return udf.Marshal1D(a, 0)
}

// DeclareStdFunctions registers the SQL-level wrappers for the
// external library so scripts can call them without re-declaring.
func (s *Session) DeclareStdFunctions() error {
	_, err := s.Run(`
		CREATE FUNCTION noise (v FLOAT, delta FLOAT) RETURNS FLOAT EXTERNAL NAME 'noise';
		CREATE FUNCTION distance (a ARRAY (i INTEGER DIMENSION, v FLOAT),
		                          b ARRAY (i INTEGER DIMENSION, v FLOAT))
			RETURNS FLOAT EXTERNAL NAME 'distance';
		CREATE FUNCTION markov (input ARRAY (x INT DIMENSION, y INT DIMENSION, f FLOAT), steps INT)
			RETURNS ARRAY (x INT DIMENSION, y INT DIMENSION, f FLOAT) EXTERNAL NAME 'markov.loop';
	`, nil)
	return err
}

// --- bulk loaders --------------------------------------------------------------

// LoadLandsat creates the §7.1 landsat array
// (channel, x, y INTEGER DIMENSIONs; v INTEGER) and bulk-fills it from
// the synthetic scene.
func (s *Session) LoadLandsat(name string, ls *workload.Landsat) (*array.Array, error) {
	sch := array.Schema{
		Dims: []array.Dimension{
			{Name: "channel", Typ: value.Int, Start: 0, End: int64(ls.Channels), Step: 1},
			{Name: "x", Typ: value.Int, Start: 0, End: int64(ls.N), Step: 1},
			{Name: "y", Typ: value.Int, Start: 0, End: int64(ls.N), Step: 1},
		},
		Attrs: []array.Attr{{Name: "v", Typ: value.Int, Default: value.NewNull(value.Int)}},
	}
	st, err := storage.New(sch, storage.Hints{})
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: name, Schema: sch, Store: st}
	coords := make([]int64, 3)
	for c := 0; c < ls.Channels; c++ {
		coords[0] = int64(c)
		for x := 0; x < ls.N; x++ {
			coords[1] = int64(x)
			for y := 0; y < ls.N; y++ {
				coords[2] = int64(y)
				if err := st.Set(coords, 0, value.NewInt(int64(ls.At(c, x, y)))); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := s.Engine.Cat.PutArray(a); err != nil {
		return nil, err
	}
	return a, nil
}

// LoadChannel creates a 2-D array <name>(x, y; v FLOAT) from one
// Landsat channel — the per-band working arrays of the AML queries.
func (s *Session) LoadChannel(name string, ls *workload.Landsat, channel int) (*array.Array, error) {
	sch := array.Schema{
		Dims: []array.Dimension{
			{Name: "x", Typ: value.Int, Start: 0, End: int64(ls.N), Step: 1},
			{Name: "y", Typ: value.Int, Start: 0, End: int64(ls.N), Step: 1},
		},
		Attrs: []array.Attr{{Name: "v", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	// Read through the accessor: hints are keyed lowercased, matching
	// the catalog's case-insensitive array names.
	h := s.Engine.StorageHint(name)
	st, err := storage.New(sch, h)
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: name, Schema: sch, Store: st}
	coords := make([]int64, 2)
	for x := 0; x < ls.N; x++ {
		coords[0] = int64(x)
		for y := 0; y < ls.N; y++ {
			coords[1] = int64(y)
			if err := st.Set(coords, 0, value.NewFloat(float64(ls.At(channel, x, y)))); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Engine.Cat.PutArray(a); err != nil {
		return nil, err
	}
	return a, nil
}

// LoadEvents creates the §7.2 events(x, y) table from a photon list.
func (s *Session) LoadEvents(name string, ev *workload.XRayEvents) error {
	tbl := catalog.NewTable(name, []catalog.TableColumn{
		{Name: "x", Typ: value.Int},
		{Name: "y", Typ: value.Int},
	})
	for i := 0; i < ev.N; i++ {
		if err := tbl.Append([]value.Value{value.NewInt(ev.X[i]), value.NewInt(ev.Y[i])}); err != nil {
			return err
		}
	}
	return s.Engine.Cat.PutTable(tbl)
}

// LoadWaveform creates a 1-D time-series array <name>(time TIMESTAMP
// DIMENSION, data DOUBLE) from a synthetic waveform — the §7.3 working
// array for gap/spike/moving-average queries.
func (s *Session) LoadWaveform(name string, w *workload.Waveform) (*array.Array, error) {
	sch := array.Schema{
		Dims:  []array.Dimension{{Name: "time", Typ: value.Timestamp, Start: array.UnboundedLow, End: array.UnboundedHigh, Step: 0}},
		Attrs: []array.Attr{{Name: "data", Typ: value.Float, Default: value.NewNull(value.Float)}},
	}
	st, err := storage.NewTabular(sch)
	if err != nil {
		return nil, err
	}
	a := &array.Array{Name: name, Schema: sch, Store: st}
	coords := make([]int64, 1)
	for i := range w.Samples {
		coords[0] = w.Times[i]
		if err := st.Set(coords, 0, value.NewFloat(w.Samples[i])); err != nil {
			return nil, err
		}
	}
	if err := s.Engine.Cat.PutArray(a); err != nil {
		return nil, err
	}
	return a, nil
}

// Checksum folds an array attribute into a single float for
// experiment validation (order-independent sum).
func Checksum(a *array.Array, attr int) float64 {
	sum := 0.0
	a.Store.Scan(func(_ []int64, vals []value.Value) bool {
		if !vals[attr].Null {
			f := vals[attr].AsFloat()
			if !math.IsNaN(f) {
				sum += f
			}
		}
		return true
	})
	return sum
}
