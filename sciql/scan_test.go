package sciql

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// scanDB builds a multi-attribute array big enough (128x128 = 16384
// cells) to cross the chunked-parallel-scan gate, so these tests
// exercise the real chunk fan-out, not the small-array serial
// fallback.
func scanDB(t testing.TB, scheme string) *DB {
	t.Helper()
	db := Open()
	if scheme != "" {
		db.SetStorageHint("grid", scheme, 16)
	}
	db.MustExec(`CREATE ARRAY grid (x INTEGER DIMENSION[128], y INTEGER DIMENSION[128],
		a FLOAT DEFAULT 0.0, b FLOAT DEFAULT 0.0, c FLOAT DEFAULT 0.0)`)
	db.MustExec(`UPDATE grid SET a = x * 128 + y`)
	db.MustExec(`UPDATE grid SET b = x - y`)
	return db
}

// scanQuerySet covers the chunked-scan surfaces: stepped FROM slices,
// slice ∩ pushdown intersections, pruned projections (strict attribute
// subsets), filter-heavy residuals and LIMIT.
var scanQuerySet = []string{
	`SELECT x, y, a FROM grid[0:128:3][*]`,
	`SELECT x, y FROM grid[2:100:7][0:128:2]`,
	`SELECT x, a FROM grid[0:128:5][4]`,
	`SELECT x, y, b FROM grid[0:128:4][*] WHERE x >= 20 AND x < 90`,
	`SELECT x, y, a FROM grid WHERE MOD(x + y, 5) = 0 AND a > 100`,
	`SELECT x + y AS s, a * 2 FROM grid WHERE MOD(x, 2) = 0 AND b > 0`,
	`SELECT x, y, c FROM grid WHERE x < 40`,
	`SELECT x, y, a FROM grid[10:120:6][*] WHERE b > 0 LIMIT 37`,
	`SELECT x, y, a, b, c FROM grid WHERE MOD(x * 31 + y, 11) = 3`,
}

// drainRows renders a Rows cursor into one line per row.
func drainRows(t *testing.T, rows *Rows) []string {
	t.Helper()
	var out []string
	for rows.Next() {
		parts := make([]string, 0, len(rows.Values()))
		for _, v := range rows.Values() {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows.Err: %v", err)
	}
	rows.Close()
	return out
}

func renderResult(rs *Result) []string {
	var out []string
	for r := 0; r < rs.NumRows(); r++ {
		parts := make([]string, 0, rs.NumCols())
		for c := 0; c < rs.NumCols(); c++ {
			parts = append(parts, rs.Get(r, c).String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

// TestChunkedScanIdentity is the tentpole identity property: for every
// storage scheme, every query in the set produces byte-identical rows
// from (a) the serial materializing interpreter, (b) the chunked
// parallel scan at 4 workers, and (c) the streaming Rows cursor at
// both parallelism settings. Run under -race in CI, this also vets the
// chunk fan-out for data races.
func TestChunkedScanIdentity(t *testing.T) {
	for _, scheme := range []string{"", "virtual", "slab", "tabular"} {
		name := scheme
		if name == "" {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			db := scanDB(t, scheme)
			for _, q := range scanQuerySet {
				db.Parallelism(1)
				serialMat, err := db.Exec(q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				want := renderResult(serialMat)
				rows, err := db.QueryContext(context.Background(), q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if got := drainRows(t, rows); strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("%s: serial Rows differ from interpreter\nrows:\n%s\nwant:\n%s",
						q, strings.Join(got, "\n"), strings.Join(want, "\n"))
				}
				db.Parallelism(4)
				parMat, err := db.Exec(q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if got := renderResult(parMat); strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("%s: parallel scan differs from serial\npar:\n%s\nserial:\n%s",
						q, strings.Join(got, "\n"), strings.Join(want, "\n"))
				}
				rows, err = db.QueryContext(context.Background(), q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if got := drainRows(t, rows); strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("%s: parallel Rows differ from serial interpreter\nrows:\n%s\nwant:\n%s",
						q, strings.Join(got, "\n"), strings.Join(want, "\n"))
				}
			}
		})
	}
}

// TestSteppedSliceAllSurfaces is the acceptance criterion in one test:
// SELECT x FROM A[0:10:3] returns exactly {0,3,6,9}, byte-identical
// between serial, parallel (4 workers), streaming Rows and the
// identical slice in expression position.
func TestSteppedSliceAllSurfaces(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY a (x INTEGER DIMENSION[10], v FLOAT DEFAULT 0.0)`)
	db.MustExec(`UPDATE a SET v = x * 1.0`)
	want := "0|3|6|9"
	collect := func(rs *Result, col int) string {
		var xs []string
		for r := 0; r < rs.NumRows(); r++ {
			xs = append(xs, rs.Get(r, col).String())
		}
		return strings.Join(xs, "|")
	}
	for _, par := range []int{1, 4} {
		db.Parallelism(par)
		if got := collect(db.MustExec(`SELECT x FROM a[0:10:3]`), 0); got != want {
			t.Fatalf("par=%d interpreter: x = %s, want %s", par, got, want)
		}
		if got := collect(db.MustQuery(`SELECT x FROM a[0:10:3]`), 0); got != want {
			t.Fatalf("par=%d Query view: x = %s, want %s", par, got, want)
		}
		rows, err := db.QueryContext(context.Background(), `SELECT x FROM a[0:10:3]`)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Join(drainRows(t, rows), "|"); got != want {
			t.Fatalf("par=%d Rows: x = %s, want %s", par, got, want)
		}
		if got := collect(db.MustExec(`SELECT a[0:10:3]`), 0); got != want {
			t.Fatalf("par=%d expression position: x = %s, want %s", par, got, want)
		}
	}
}

// TestPrunedStreamingIsIncremental pins that a pruned-projection query
// still takes the streaming path and that a large stepped scan streams
// its first row without draining the store.
func TestPrunedStreamingIsIncremental(t *testing.T) {
	db := scanDB(t, "")
	db.Parallelism(4)
	rows, err := db.QueryContext(context.Background(), `SELECT x, a FROM grid[0:128:2][*] WHERE b > 0`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.cur.Streaming() {
		t.Fatal("pruned stepped scan did not take the streaming path")
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
}

// TestScanSchemeEquivalence cross-checks one stepped, pruned,
// filter-heavy query across all four storage schemes at parallelism 4:
// the physical representation must never change the answer.
func TestScanSchemeEquivalence(t *testing.T) {
	var want []string
	for i, scheme := range []string{"virtual", "dorder", "slab", "tabular"} {
		db := scanDB(t, scheme)
		db.Parallelism(4)
		rs := db.MustQuery(`SELECT x, y, a FROM grid[0:128:3][0:128:2] WHERE MOD(x + y, 3) < 2 ORDER BY x, y`)
		got := renderResult(rs)
		if i == 0 {
			want = got
			continue
		}
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("%s disagrees with virtual:\n%s\nvs\n%s", scheme,
				strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
	}
	if len(want) == 0 {
		t.Fatal("empty cross-scheme result")
	}
}

// TestParallelScanCompleteness guards the chunk merge: a full parallel
// scan returns exactly the store's live cells — no chunk dropped, no
// cell double-counted.
func TestParallelScanCompleteness(t *testing.T) {
	db := scanDB(t, "slab")
	db.Parallelism(4)
	arr, ok := db.LookupArray("grid")
	if !ok {
		t.Fatal("grid missing")
	}
	rs := db.MustExec(`SELECT x, y, a, b, c FROM grid`)
	if rs.NumRows() != arr.Len() {
		t.Fatalf("parallel scan returned %d rows, store holds %d live cells", rs.NumRows(), arr.Len())
	}
	unique := make(map[string]bool, rs.NumRows())
	for r := 0; r < rs.NumRows(); r++ {
		k := fmt.Sprintf("%d/%d", rs.Get(r, 0).AsInt(), rs.Get(r, 1).AsInt())
		if unique[k] {
			t.Fatalf("duplicate cell %s in parallel scan", k)
		}
		unique[k] = true
	}
}
