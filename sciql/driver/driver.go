// Package driver registers the SciQL engine with database/sql, so
// standard Go tooling can talk to arrays through the standard
// relational interface — the same move SciQL itself makes for array
// science workloads (Kersten et al., EDBT 2011):
//
//	import (
//	    "database/sql"
//	    _ "repro/sciql/driver"
//	)
//
//	db, _ := sql.Open("sciql", "memory://demo")
//	db.ExecContext(ctx, `CREATE ARRAY m (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
//	rows, _ := db.QueryContext(ctx, `SELECT x, v FROM m WHERE v > ?1`, 0.5)
//
// Every connection opened with the same data source name shares one
// in-memory database (the DSN is just a registry key; "" names the
// default instance). Placeholders are SciQL's named host parameters:
// ?name binds sql.Named("name", v), and plain positional arguments
// bind ?1, ?2, ... by ordinal.
//
// Each driver connection is a real sciql.Conn: its own session over
// the shared, versioned catalog. database/sql's pool therefore maps
// onto genuinely concurrent sessions — queries on different
// connections run in parallel with no shared statement mutex — and
// result sets stream row by row straight from the engine cursor
// instead of being buffered. Every query reads one pinned catalog
// snapshot, so an open *sql.Rows is immune to concurrent DML.
// Transactions are supported: db.BeginTx starts a snapshot-isolated
// transaction (reads pinned at BEGIN, writes private until COMMIT,
// first-committer-wins conflicts surface from Commit as
// sciql.ErrTxConflict).
package driver

import (
	"context"
	"database/sql"
	stddriver "database/sql/driver"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"sync"
	"time"

	"repro/sciql"
)

func init() {
	sql.Register("sciql", &Driver{})
}

// Driver implements database/sql/driver.Driver over shared in-memory
// SciQL databases keyed by data source name.
type Driver struct{}

var (
	registryMu sync.Mutex
	registry   = make(map[string]*sciql.DB)
)

// getDB resolves a DSN to its shared database, creating it on first
// use.
func getDB(dsn string) *sciql.DB {
	registryMu.Lock()
	defer registryMu.Unlock()
	db, ok := registry[dsn]
	if !ok {
		db = sciql.Open()
		registry[dsn] = db
	}
	return db
}

// Open returns a new connection (session) on the database named by
// dsn, creating the database on first use.
func (Driver) Open(dsn string) (stddriver.Conn, error) {
	return openConn(getDB(dsn))
}

// DB returns the sciql.DB behind a data source name (creating it on
// first use), for tests and mixed native/database-sql access.
func DB(dsn string) *sciql.DB {
	return getDB(dsn)
}

// NewConnector wraps an existing sciql.DB as a driver.Connector for
// sql.OpenDB, bypassing the DSN registry.
func NewConnector(db *sciql.DB) stddriver.Connector {
	return &connector{db: db}
}

type connector struct{ db *sciql.DB }

func (c *connector) Connect(context.Context) (stddriver.Conn, error) { return openConn(c.db) }
func (c *connector) Driver() stddriver.Driver                        { return &Driver{} }

func openConn(db *sciql.DB) (stddriver.Conn, error) {
	sc, err := db.Conn(context.Background())
	if err != nil {
		return nil, err
	}
	return &conn{c: sc}, nil
}

// conn is one database/sql connection backed by its own sciql.Conn
// session. database/sql serializes use of a single conn; different
// conns execute concurrently against the shared catalog.
type conn struct{ c *sciql.Conn }

var (
	_ stddriver.Conn              = (*conn)(nil)
	_ stddriver.QueryerContext    = (*conn)(nil)
	_ stddriver.ExecerContext     = (*conn)(nil)
	_ stddriver.ConnBeginTx       = (*conn)(nil)
	_ stddriver.NamedValueChecker = (*conn)(nil)
	_ stddriver.SessionResetter   = (*conn)(nil)
)

func (c *conn) Close() error { return c.c.Close() }

// ResetSession runs when database/sql returns the connection to its
// pool. A transaction opened by a raw `BEGIN` statement (db.Exec
// rather than db.Begin) would otherwise ride along on the pooled
// connection and silently swallow every later write handed to it;
// roll it back instead — SQL-level transaction scripts belong on a
// dedicated sql.Conn (or db.Begin), not the shared pool.
func (c *conn) ResetSession(ctx context.Context) error {
	if c.c.InTx() {
		if _, err := c.c.ExecContext(ctx, `ROLLBACK`); err != nil {
			return stddriver.ErrBadConn
		}
	}
	return nil
}

// Begin starts a snapshot-isolated transaction on this connection.
func (c *conn) Begin() (stddriver.Tx, error) {
	t, err := c.c.Begin()
	if err != nil {
		return nil, err
	}
	return &tx{t: t}, nil
}

// BeginTx validates the options: SciQL transactions are snapshot
// isolated, so any isolation level at or below snapshot is satisfied;
// serializable is refused rather than silently weakened.
func (c *conn) BeginTx(ctx context.Context, opts stddriver.TxOptions) (stddriver.Tx, error) {
	switch sql.IsolationLevel(opts.Isolation) {
	case sql.LevelDefault, sql.LevelReadUncommitted, sql.LevelReadCommitted,
		sql.LevelRepeatableRead, sql.LevelSnapshot:
	default:
		return nil, fmt.Errorf("sciql: isolation level %s not supported (transactions are snapshot isolated)",
			sql.IsolationLevel(opts.Isolation))
	}
	if opts.ReadOnly {
		// Not enforced by the engine; refuse rather than hand back a
		// "read-only" transaction that accepts writes.
		return nil, fmt.Errorf("sciql: read-only transactions are not supported")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Begin()
}

type tx struct{ t *sciql.Tx }

func (t *tx) Commit() error   { return t.t.Commit() }
func (t *tx) Rollback() error { return t.t.Rollback() }

// Prepare parses the statement once; re-executions reuse the cached
// AST, and the engine's version-stamped plan cache re-resolves after
// DDL from any connection.
func (c *conn) Prepare(query string) (stddriver.Stmt, error) {
	ps, err := c.c.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{ps: ps}, nil
}

// CheckNamedValue converts arguments to engine values; named and
// ordinal parameters are both accepted.
func (c *conn) CheckNamedValue(nv *stddriver.NamedValue) error {
	_, err := toArg(nv)
	return err
}

func (c *conn) QueryContext(ctx context.Context, query string, nvs []stddriver.NamedValue) (stddriver.Rows, error) {
	args, err := toArgs(nvs)
	if err != nil {
		return nil, err
	}
	r, err := c.c.QueryContext(ctx, query, args...)
	if err != nil {
		return nil, err
	}
	return newRows(r), nil
}

func (c *conn) ExecContext(ctx context.Context, query string, nvs []stddriver.NamedValue) (stddriver.Result, error) {
	args, err := toArgs(nvs)
	if err != nil {
		return nil, err
	}
	if _, err := c.c.ExecContext(ctx, query, args...); err != nil {
		return nil, err
	}
	return stddriver.ResultNoRows, nil
}

// stmt is a prepared statement handle bound to its connection.
type stmt struct {
	ps *sciql.Stmt
}

var (
	_ stddriver.Stmt              = (*stmt)(nil)
	_ stddriver.StmtQueryContext  = (*stmt)(nil)
	_ stddriver.StmtExecContext   = (*stmt)(nil)
	_ stddriver.NamedValueChecker = (*stmt)(nil)
)

func (s *stmt) Close() error { return s.ps.Close() }

// NumInput reports -1: the engine binds named parameters at execution
// time, so database/sql skips its placeholder-count check.
func (s *stmt) NumInput() int { return -1 }

func (s *stmt) CheckNamedValue(nv *stddriver.NamedValue) error {
	_, err := toArg(nv)
	return err
}

func (s *stmt) Exec(vals []stddriver.Value) (stddriver.Result, error) {
	return s.ExecContext(context.Background(), ordinalValues(vals))
}

func (s *stmt) Query(vals []stddriver.Value) (stddriver.Rows, error) {
	return s.QueryContext(context.Background(), ordinalValues(vals))
}

func (s *stmt) ExecContext(ctx context.Context, nvs []stddriver.NamedValue) (stddriver.Result, error) {
	args, err := toArgs(nvs)
	if err != nil {
		return nil, err
	}
	if _, err := s.ps.ExecContext(ctx, args...); err != nil {
		return nil, err
	}
	return stddriver.ResultNoRows, nil
}

func (s *stmt) QueryContext(ctx context.Context, nvs []stddriver.NamedValue) (stddriver.Rows, error) {
	args, err := toArgs(nvs)
	if err != nil {
		return nil, err
	}
	r, err := s.ps.QueryContext(ctx, args...)
	if err != nil {
		return nil, err
	}
	return newRows(r), nil
}

func ordinalValues(vals []stddriver.Value) []stddriver.NamedValue {
	nvs := make([]stddriver.NamedValue, len(vals))
	for i, v := range vals {
		nvs[i] = stddriver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return nvs
}

// rows streams straight from the engine cursor: each driver Next call
// pulls one row from the sciql.Rows, which reads the catalog snapshot
// pinned at query start — no pre-buffering, no lock held while the
// caller iterates, and the first row is available before a long scan
// finishes.
type rows struct {
	r     *sciql.Rows
	cols  []string
	types []string
}

var (
	_ stddriver.Rows                           = (*rows)(nil)
	_ stddriver.RowsColumnTypeScanType         = (*rows)(nil)
	_ stddriver.RowsColumnTypeDatabaseTypeName = (*rows)(nil)
)

func newRows(r *sciql.Rows) *rows {
	return &rows{r: r, cols: r.Columns(), types: r.ColumnTypeNames()}
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return r.r.Close() }

func (r *rows) Next(dest []stddriver.Value) error {
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	for i, v := range r.r.Values() {
		dest[i] = driverValue(v)
	}
	return nil
}

// ColumnTypeDatabaseTypeName reports the SciQL type of a column
// ("INTEGER", "FLOAT", "VARCHAR", "BOOLEAN", "TIMESTAMP", "ARRAY");
// empty when a streamed computed expression's type is not yet known.
func (r *rows) ColumnTypeDatabaseTypeName(index int) string { return r.types[index] }

var (
	scanTypeInt64  = reflect.TypeOf(int64(0))
	scanTypeFloat  = reflect.TypeOf(float64(0))
	scanTypeString = reflect.TypeOf("")
	scanTypeBool   = reflect.TypeOf(false)
	scanTypeTime   = reflect.TypeOf(time.Time{})
	scanTypeAny    = reflect.TypeOf((*any)(nil)).Elem()
)

// ColumnTypeScanType reports the Go type a column scans into.
func (r *rows) ColumnTypeScanType(index int) reflect.Type {
	switch r.types[index] {
	case "INTEGER":
		return scanTypeInt64
	case "FLOAT":
		return scanTypeFloat
	case "VARCHAR":
		return scanTypeString
	case "BOOLEAN":
		return scanTypeBool
	case "TIMESTAMP":
		return scanTypeTime
	default:
		return scanTypeAny
	}
}

// driverValue maps an engine value onto driver.Value's allowed set.
func driverValue(v sciql.Value) stddriver.Value {
	g := sciql.GoValue(v)
	switch g.(type) {
	case nil, int64, float64, bool, []byte, string, time.Time:
		return g
	default:
		return fmt.Sprint(g)
	}
}

// toArgs converts database/sql arguments to engine parameter bindings.
func toArgs(nvs []stddriver.NamedValue) ([]sciql.Arg, error) {
	args := make([]sciql.Arg, 0, len(nvs))
	for i := range nvs {
		a, err := toArg(&nvs[i])
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}

// toArg binds one argument: sql.Named("lo", v) binds ?lo, a bare
// positional argument binds ?N by ordinal.
func toArg(nv *stddriver.NamedValue) (sciql.Arg, error) {
	name := nv.Name
	if name == "" {
		name = strconv.Itoa(nv.Ordinal)
	}
	switch v := nv.Value.(type) {
	case nil:
		return sciql.Arg{Name: name, Value: sciql.NewNullFloat()}, nil
	case int64:
		return sciql.Int(name, v), nil
	case int:
		return sciql.Int(name, int64(v)), nil
	case float64:
		return sciql.Float(name, v), nil
	case bool:
		i := int64(0)
		if v {
			i = 1
		}
		return sciql.Int(name, i), nil
	case string:
		return sciql.String(name, v), nil
	case []byte:
		return sciql.String(name, string(v)), nil
	case time.Time:
		return sciql.Time(name, v), nil
	default:
		return sciql.Arg{}, fmt.Errorf("sciql: unsupported argument type %T", nv.Value)
	}
}
