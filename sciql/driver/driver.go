// Package driver registers the SciQL engine with database/sql, so
// standard Go tooling can talk to arrays through the standard
// relational interface — the same move SciQL itself makes for array
// science workloads (Kersten et al., EDBT 2011):
//
//	import (
//	    "database/sql"
//	    _ "repro/sciql/driver"
//	)
//
//	db, _ := sql.Open("sciql", "memory://demo")
//	db.ExecContext(ctx, `CREATE ARRAY m (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
//	rows, _ := db.QueryContext(ctx, `SELECT x, v FROM m WHERE v > ?1`, 0.5)
//
// Every connection opened with the same data source name shares one
// in-memory database (the DSN is just a registry key; "" names the
// default instance). Placeholders are SciQL's named host parameters:
// ?name binds sql.Named("name", v), and plain positional arguments
// bind ?1, ?2, ... by ordinal.
//
// database/sql may use connections from multiple goroutines, while the
// embedded engine is single-threaded by contract; the driver therefore
// serializes statements on a per-database mutex and buffers each
// result set before returning it, so no lock is held while the caller
// iterates rows. Query execution itself honors the context — canceling
// it aborts a running scan — and the native sciql API remains the way
// to stream cursors incrementally. Transactions are not supported.
package driver

import (
	"context"
	"database/sql"
	stddriver "database/sql/driver"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/sciql"
)

func init() {
	sql.Register("sciql", &Driver{})
}

// Driver implements database/sql/driver.Driver over shared in-memory
// SciQL databases keyed by data source name.
type Driver struct{}

var (
	registryMu sync.Mutex
	registry   = make(map[string]*shared)
)

// shared is one registered database plus the mutex serializing the
// connections that point at it.
type shared struct {
	db *sciql.DB
	mu sync.Mutex
}

// getShared resolves a DSN to its shared database, creating it on
// first use.
func getShared(dsn string) *shared {
	registryMu.Lock()
	defer registryMu.Unlock()
	s, ok := registry[dsn]
	if !ok {
		s = &shared{db: sciql.Open()}
		registry[dsn] = s
	}
	return s
}

// Open returns a connection to the database named by dsn, creating it
// on first use.
func (Driver) Open(dsn string) (stddriver.Conn, error) {
	return &conn{s: getShared(dsn)}, nil
}

// DB returns the sciql.DB behind a data source name (creating it on
// first use), for tests and mixed native/database-sql access.
func DB(dsn string) *sciql.DB {
	return getShared(dsn).db
}

// NewConnector wraps an existing sciql.DB as a driver.Connector for
// sql.OpenDB, bypassing the DSN registry.
func NewConnector(db *sciql.DB) stddriver.Connector {
	return &connector{s: &shared{db: db}}
}

type connector struct{ s *shared }

func (c *connector) Connect(context.Context) (stddriver.Conn, error) { return &conn{s: c.s}, nil }
func (c *connector) Driver() stddriver.Driver                        { return &Driver{} }

// conn is one database/sql connection. All conns on a DSN share the
// engine; the shared mutex serializes their statements.
type conn struct{ s *shared }

var (
	_ stddriver.Conn              = (*conn)(nil)
	_ stddriver.QueryerContext    = (*conn)(nil)
	_ stddriver.ExecerContext     = (*conn)(nil)
	_ stddriver.NamedValueChecker = (*conn)(nil)
)

func (c *conn) Close() error { return nil }

func (c *conn) Begin() (stddriver.Tx, error) {
	return nil, fmt.Errorf("sciql: transactions are not supported")
}

// Prepare parses the statement once; re-executions reuse the cached
// AST and optimized plan.
func (c *conn) Prepare(query string) (stddriver.Stmt, error) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	ps, err := c.s.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{s: c.s, ps: ps}, nil
}

// CheckNamedValue converts arguments to engine values; named and
// ordinal parameters are both accepted.
func (c *conn) CheckNamedValue(nv *stddriver.NamedValue) error {
	_, err := toArg(nv)
	return err
}

func (c *conn) QueryContext(ctx context.Context, query string, nvs []stddriver.NamedValue) (stddriver.Rows, error) {
	args, err := toArgs(nvs)
	if err != nil {
		return nil, err
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	r, err := c.s.db.QueryContext(ctx, query, args...)
	if err != nil {
		return nil, err
	}
	return bufferRows(r)
}

func (c *conn) ExecContext(ctx context.Context, query string, nvs []stddriver.NamedValue) (stddriver.Result, error) {
	args, err := toArgs(nvs)
	if err != nil {
		return nil, err
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if _, err := c.s.db.ExecContext(ctx, query, args...); err != nil {
		return nil, err
	}
	return stddriver.ResultNoRows, nil
}

// stmt is a prepared statement handle.
type stmt struct {
	s  *shared
	ps *sciql.Stmt
}

var (
	_ stddriver.Stmt              = (*stmt)(nil)
	_ stddriver.StmtQueryContext  = (*stmt)(nil)
	_ stddriver.StmtExecContext   = (*stmt)(nil)
	_ stddriver.NamedValueChecker = (*stmt)(nil)
)

func (s *stmt) Close() error { return s.ps.Close() }

// NumInput reports -1: the engine binds named parameters at execution
// time, so database/sql skips its placeholder-count check.
func (s *stmt) NumInput() int { return -1 }

func (s *stmt) CheckNamedValue(nv *stddriver.NamedValue) error {
	_, err := toArg(nv)
	return err
}

func (s *stmt) Exec(vals []stddriver.Value) (stddriver.Result, error) {
	return s.ExecContext(context.Background(), ordinalValues(vals))
}

func (s *stmt) Query(vals []stddriver.Value) (stddriver.Rows, error) {
	return s.QueryContext(context.Background(), ordinalValues(vals))
}

func (s *stmt) ExecContext(ctx context.Context, nvs []stddriver.NamedValue) (stddriver.Result, error) {
	args, err := toArgs(nvs)
	if err != nil {
		return nil, err
	}
	s.s.mu.Lock()
	defer s.s.mu.Unlock()
	if _, err := s.ps.ExecContext(ctx, args...); err != nil {
		return nil, err
	}
	return stddriver.ResultNoRows, nil
}

func (s *stmt) QueryContext(ctx context.Context, nvs []stddriver.NamedValue) (stddriver.Rows, error) {
	args, err := toArgs(nvs)
	if err != nil {
		return nil, err
	}
	s.s.mu.Lock()
	defer s.s.mu.Unlock()
	r, err := s.ps.QueryContext(ctx, args...)
	if err != nil {
		return nil, err
	}
	return bufferRows(r)
}

func ordinalValues(vals []stddriver.Value) []stddriver.NamedValue {
	nvs := make([]stddriver.NamedValue, len(vals))
	for i, v := range vals {
		nvs[i] = stddriver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return nvs
}

// rows adapts a drained sciql.Rows to driver.Rows. Buffering happens
// under the database mutex (bufferRows), so iteration here needs no
// lock and other connections are free to run statements.
type rows struct {
	cols []string
	data [][]any
	pos  int
}

// bufferRows drains r into memory, converting values to driver types.
func bufferRows(r *sciql.Rows) (stddriver.Rows, error) {
	defer r.Close()
	out := &rows{cols: r.Columns()}
	for r.Next() {
		vals := r.Values()
		row := make([]any, len(vals))
		for i, v := range vals {
			row[i] = driverValue(v)
		}
		out.data = append(out.data, row)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []stddriver.Value) error {
	if r.pos >= len(r.data) {
		return io.EOF
	}
	for i, v := range r.data[r.pos] {
		dest[i] = v
	}
	r.pos++
	return nil
}

// driverValue maps an engine value onto driver.Value's allowed set.
func driverValue(v sciql.Value) stddriver.Value {
	g := sciql.GoValue(v)
	switch g.(type) {
	case nil, int64, float64, bool, []byte, string, time.Time:
		return g
	default:
		return fmt.Sprint(g)
	}
}

// toArgs converts database/sql arguments to engine parameter bindings.
func toArgs(nvs []stddriver.NamedValue) ([]sciql.Arg, error) {
	args := make([]sciql.Arg, 0, len(nvs))
	for i := range nvs {
		a, err := toArg(&nvs[i])
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}

// toArg binds one argument: sql.Named("lo", v) binds ?lo, a bare
// positional argument binds ?N by ordinal.
func toArg(nv *stddriver.NamedValue) (sciql.Arg, error) {
	name := nv.Name
	if name == "" {
		name = strconv.Itoa(nv.Ordinal)
	}
	switch v := nv.Value.(type) {
	case nil:
		return sciql.Arg{Name: name, Value: sciql.NewNullFloat()}, nil
	case int64:
		return sciql.Int(name, v), nil
	case int:
		return sciql.Int(name, int64(v)), nil
	case float64:
		return sciql.Float(name, v), nil
	case bool:
		i := int64(0)
		if v {
			i = 1
		}
		return sciql.Int(name, i), nil
	case string:
		return sciql.String(name, v), nil
	case []byte:
		return sciql.String(name, string(v)), nil
	case time.Time:
		return sciql.Time(name, v), nil
	default:
		return sciql.Arg{}, fmt.Errorf("sciql: unsupported argument type %T", nv.Value)
	}
}
