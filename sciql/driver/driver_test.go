package driver

import (
	"context"
	"database/sql"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestDatabaseSQLRoundTrip is the end-to-end acceptance path: open the
// default DSN through stdlib database/sql, create an array, update it,
// run a parameterized SELECT through QueryContext and scan the rows.
func TestDatabaseSQLRoundTrip(t *testing.T) {
	db, err := sql.Open("sciql", "")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if _, err := db.ExecContext(ctx, `CREATE ARRAY rt (
		x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, `UPDATE rt SET v = x * 4 + y`); err != nil {
		t.Fatal(err)
	}

	rows, err := db.QueryContext(ctx,
		`SELECT x, y, v FROM rt WHERE v >= ?lo AND x = ?2`,
		sql.Named("lo", 5.0), int64(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"x", "y", "v"}; strings.Join(cols, ",") != strings.Join(want, ",") {
		t.Fatalf("columns = %v, want %v", cols, want)
	}
	var got []float64
	for rows.Next() {
		var x, y int64
		var v float64
		if err := rows.Scan(&x, &y, &v); err != nil {
			t.Fatal(err)
		}
		if v != float64(x*4+y) {
			t.Fatalf("row (%d,%d) = %v, want %v", x, y, v, x*4+y)
		}
		got = append(got, v)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // x=2: v in {8,9,10,11}, all >= 5
		t.Fatalf("got %d rows, want 4: %v", len(got), got)
	}
}

// TestPreparedStatementReuse exercises driver.Stmt: prepared once,
// executed with different bindings.
func TestPreparedStatementReuse(t *testing.T) {
	db, err := sql.Open("sciql", "prepared-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	mustExec(t, db, `CREATE ARRAY ps (x INTEGER DIMENSION[8], v FLOAT DEFAULT 0.0)`)
	mustExec(t, db, `UPDATE ps SET v = x * 1.5`)

	st, err := db.PrepareContext(ctx, `SELECT v FROM ps WHERE x = ?x`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for x := int64(0); x < 8; x++ {
		var v float64
		if err := st.QueryRowContext(ctx, sql.Named("x", x)).Scan(&v); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if v != float64(x)*1.5 {
			t.Fatalf("v(%d) = %v, want %v", x, v, float64(x)*1.5)
		}
	}
}

// TestContextCancelAborts verifies a canceled context aborts a
// running query through the standard interface.
func TestContextCancelAborts(t *testing.T) {
	db, err := sql.Open("sciql", "cancel-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE ARRAY big (x INTEGER DIMENSION[300], y INTEGER DIMENSION[300], v FLOAT DEFAULT 0.0)`)
	mustExec(t, db, `UPDATE big SET v = x + y`)
	DB("cancel-test").Parallelism(4)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	// Aggregation over 90k cells with a non-trivial expression: long
	// enough that cancellation normally lands mid-flight. Both
	// outcomes of the race are accepted; what must never happen is a
	// non-context error or a hang.
	_, err = db.QueryContext(ctx, `SELECT AVG(SQRT(v) * SQRT(v+1) + POWER(v, 0.3)) FROM big GROUP BY MOD(x*31+y, 97)`)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled or success(race), got %v", err)
	}
}

// TestTransactionsUnsupported pins the explicit Begin error.
func TestTransactionsUnsupported(t *testing.T) {
	db, err := sql.Open("sciql", "tx-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Begin(); err == nil || !strings.Contains(err.Error(), "transactions") {
		t.Fatalf("Begin error = %v, want transactions-unsupported", err)
	}
}

func mustExec(t *testing.T, db *sql.DB, q string) {
	t.Helper()
	if _, err := db.Exec(q); err != nil {
		t.Fatalf("%v\nSQL: %s", err, q)
	}
}
