package driver

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDatabaseSQLRoundTrip is the end-to-end acceptance path: open the
// default DSN through stdlib database/sql, create an array, update it,
// run a parameterized SELECT through QueryContext and scan the rows.
func TestDatabaseSQLRoundTrip(t *testing.T) {
	db, err := sql.Open("sciql", "")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	if _, err := db.ExecContext(ctx, `CREATE ARRAY rt (
		x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, `UPDATE rt SET v = x * 4 + y`); err != nil {
		t.Fatal(err)
	}

	rows, err := db.QueryContext(ctx,
		`SELECT x, y, v FROM rt WHERE v >= ?lo AND x = ?2`,
		sql.Named("lo", 5.0), int64(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"x", "y", "v"}; strings.Join(cols, ",") != strings.Join(want, ",") {
		t.Fatalf("columns = %v, want %v", cols, want)
	}
	var got []float64
	for rows.Next() {
		var x, y int64
		var v float64
		if err := rows.Scan(&x, &y, &v); err != nil {
			t.Fatal(err)
		}
		if v != float64(x*4+y) {
			t.Fatalf("row (%d,%d) = %v, want %v", x, y, v, x*4+y)
		}
		got = append(got, v)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // x=2: v in {8,9,10,11}, all >= 5
		t.Fatalf("got %d rows, want 4: %v", len(got), got)
	}
}

// TestPreparedStatementReuse exercises driver.Stmt: prepared once,
// executed with different bindings.
func TestPreparedStatementReuse(t *testing.T) {
	db, err := sql.Open("sciql", "prepared-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	mustExec(t, db, `CREATE ARRAY ps (x INTEGER DIMENSION[8], v FLOAT DEFAULT 0.0)`)
	mustExec(t, db, `UPDATE ps SET v = x * 1.5`)

	st, err := db.PrepareContext(ctx, `SELECT v FROM ps WHERE x = ?x`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for x := int64(0); x < 8; x++ {
		var v float64
		if err := st.QueryRowContext(ctx, sql.Named("x", x)).Scan(&v); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if v != float64(x)*1.5 {
			t.Fatalf("v(%d) = %v, want %v", x, v, float64(x)*1.5)
		}
	}
}

// TestContextCancelAborts verifies a canceled context aborts a
// running query through the standard interface.
func TestContextCancelAborts(t *testing.T) {
	db, err := sql.Open("sciql", "cancel-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE ARRAY big (x INTEGER DIMENSION[300], y INTEGER DIMENSION[300], v FLOAT DEFAULT 0.0)`)
	mustExec(t, db, `UPDATE big SET v = x + y`)
	DB("cancel-test").Parallelism(4)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	// Aggregation over 90k cells with a non-trivial expression: long
	// enough that cancellation normally lands mid-flight. Both
	// outcomes of the race are accepted; what must never happen is a
	// non-context error or a hang.
	_, err = db.QueryContext(ctx, `SELECT AVG(SQRT(v) * SQRT(v+1) + POWER(v, 0.3)) FROM big GROUP BY MOD(x*31+y, 97)`)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled or success(race), got %v", err)
	}
}

// TestTransactions drives snapshot-isolated transactions through the
// standard database/sql surface: writes are invisible until Commit
// and discarded by Rollback.
func TestTransactions(t *testing.T) {
	db, err := sql.Open("sciql", "tx-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE ARRAY txm (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)

	count := func(where string) int {
		t.Helper()
		var n int
		if err := db.QueryRow(`SELECT COUNT(*) FROM txm WHERE v > ?1`, 0.5).Scan(&n); err != nil {
			t.Fatal(err)
		}
		return n
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE txm SET v = 1.0`); err != nil {
		t.Fatal(err)
	}
	if n := count(""); n != 0 {
		t.Fatalf("uncommitted write visible outside the tx: %d rows", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := count(""); n != 4 {
		t.Fatalf("after commit: %d rows, want 4", n)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE txm SET v = 0.0`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := count(""); n != 4 {
		t.Fatalf("rollback leaked: %d rows, want 4", n)
	}

	// Serializable is refused rather than silently weakened.
	if _, err := db.BeginTx(context.Background(), &sql.TxOptions{Isolation: sql.LevelSerializable}); err == nil ||
		!strings.Contains(err.Error(), "isolation") {
		t.Fatalf("BeginTx(serializable) error = %v, want isolation-level refusal", err)
	}
}

func mustExec(t *testing.T, db *sql.DB, q string) {
	t.Helper()
	if _, err := db.Exec(q); err != nil {
		t.Fatalf("%v\nSQL: %s", err, q)
	}
}

// TestColumnTypes pins the driver's sql.ColumnType support: database
// type names and scan types report real SciQL types.
func TestColumnTypes(t *testing.T) {
	db, err := sql.Open("sciql", "coltypes")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE ARRAY ct (x INTEGER DIMENSION[2], v FLOAT DEFAULT 1.5)`)
	rows, err := db.Query(`SELECT x, v FROM ct`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cts, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != 2 {
		t.Fatalf("got %d column types", len(cts))
	}
	if got := cts[0].DatabaseTypeName(); got != "INTEGER" {
		t.Fatalf("col 0 type name = %q, want INTEGER", got)
	}
	if got := cts[1].DatabaseTypeName(); got != "FLOAT" {
		t.Fatalf("col 1 type name = %q, want FLOAT", got)
	}
	if got := cts[0].ScanType(); got != reflect.TypeOf(int64(0)) {
		t.Fatalf("col 0 scan type = %v, want int64", got)
	}
	if got := cts[1].ScanType(); got != reflect.TypeOf(float64(0)) {
		t.Fatalf("col 1 scan type = %v, want float64", got)
	}
}

// TestUnbufferedStreaming pins the tentpole's driver claim: rows are
// served from a live cursor, not a pre-buffered slice — the first row
// arrives while the connection keeps streaming, and a second
// connection can run statements while the first result set is open.
func TestUnbufferedStreaming(t *testing.T) {
	db, err := sql.Open("sciql", "streaming")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(4)
	mustExec(t, db, `CREATE ARRAY big (x INTEGER DIMENSION[128], y INTEGER DIMENSION[64], v FLOAT DEFAULT 1.0)`)

	rows, err := db.Query(`SELECT x, y, v FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// With the result set open (holding its pool connection), another
	// pool connection runs a write — impossible under the old
	// per-database statement mutex + full buffering design.
	mustExec(t, db, `UPDATE big SET v = 2.0 WHERE x = 0 AND y = 0`)
	// The open cursor still serves its pinned snapshot to the end.
	n := 1
	var sum float64
	var x, y int64
	var v float64
	if err := rows.Scan(&x, &y, &v); err != nil {
		t.Fatal(err)
	}
	sum += v
	for rows.Next() {
		if err := rows.Scan(&x, &y, &v); err != nil {
			t.Fatal(err)
		}
		sum += v
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 128*64 || sum != float64(n) {
		t.Fatalf("snapshot scan: %d rows sum %v, want %d rows sum %d (pinned pre-update version)", n, sum, 128*64, 128*64)
	}
	// A fresh query sees the committed update.
	var v2 float64
	if err := db.QueryRow(`SELECT v FROM big WHERE x = 0 AND y = 0`).Scan(&v2); err != nil {
		t.Fatal(err)
	}
	if v2 != 2.0 {
		t.Fatalf("post-update read = %v, want 2.0", v2)
	}
}

// TestConcurrentPoolQueries exercises the pool with parallel readers
// and a writer (race detector coverage for the driver path).
func TestConcurrentPoolQueries(t *testing.T) {
	db, err := sql.Open("sciql", "poolconc")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(8)
	mustExec(t, db, `CREATE ARRAY pc (x INTEGER DIMENSION[64], y INTEGER DIMENSION[64], v FLOAT DEFAULT 1.0)`)
	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if r == 0 {
					if _, err := db.Exec(`UPDATE pc SET v = v + 1 WHERE x = 1 AND y = 1`); err != nil {
						errs <- err
						return
					}
					continue
				}
				var n int
				if err := db.QueryRow(`SELECT COUNT(*) FROM pc WHERE v > 0`).Scan(&n); err != nil {
					errs <- err
					return
				}
				if n != 64*64 {
					errs <- fmt.Errorf("count = %d, want %d", n, 64*64)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRawBeginDoesNotLeakTx: a BEGIN issued as plain SQL through the
// pool is rolled back when the connection returns to the pool
// (ResetSession), so later writes on pooled connections are never
// silently swallowed by a zombie transaction.
func TestRawBeginDoesNotLeakTx(t *testing.T) {
	db, err := sql.Open("sciql", "rawbegin")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1) // force every statement onto the same conn
	mustExec(t, db, `CREATE ARRAY rb (x INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0)`)
	mustExec(t, db, `BEGIN`)
	mustExec(t, db, `UPDATE rb SET v = 5.0`)
	// The update must be visible to a fresh reader: either it ran
	// autocommit (the BEGIN was reset with the pooled conn) or not at
	// all — never held hostage by an unreachable open transaction.
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM rb WHERE v = 5.0`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("write after raw BEGIN invisible (zombie tx): %d rows, want 2", n)
	}
	// ReadOnly transactions are refused, not silently writable.
	if _, err := db.BeginTx(context.Background(), &sql.TxOptions{ReadOnly: true}); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("BeginTx(ReadOnly) error = %v, want refusal", err)
	}
}
