package sciql

import (
	"fmt"
	"testing"
)

// vectorQuerySet stresses exactly the semantics the kernel surface
// must reproduce bit-for-bit: SQL NULL three-valued logic, division
// and modulo by zero yielding NULL, mixed int/float promotion,
// BETWEEN/IN lowering, numeric builtins, hybrid projections where only
// some items compile, LIMIT pushed into the scan, and fallback shapes.
var vectorQuerySet = []string{
	// Arithmetic + comparison filters over int and float columns.
	`SELECT x, y, v FROM nmatrix WHERE MOD(x * 31 + y, 7) < 3 AND v > 10 ORDER BY x, y`,
	`SELECT x + v AS a, x * 2 AS b, v * 2 AS c, x / 4 AS d, v / 4 AS e FROM nmatrix WHERE x < 8 ORDER BY x, y`,
	// Division and modulo by zero produce NULLs (int and float paths).
	`SELECT x, v / (x - 5) AS d, MOD(y, x - 5) AS m FROM nmatrix WHERE y = 0 ORDER BY x`,
	`SELECT x, 100 / x AS a, 100.5 / x AS b FROM nmatrix WHERE y = 1 ORDER BY x`,
	// Three-valued logic over NULL-bearing columns.
	`SELECT x, y FROM nmatrix WHERE w > 100 OR n < 0 ORDER BY x, y`,
	`SELECT x, y FROM nmatrix WHERE NOT (w > 100) ORDER BY x, y`,
	`SELECT x, y, w FROM nmatrix WHERE w IS NULL AND v > 200 ORDER BY x, y`,
	`SELECT x, y, n FROM nmatrix WHERE n IS NOT NULL AND v > 50 ORDER BY x, y`,
	// NULL-bearing columns in the projection.
	`SELECT w, n, w + n AS s, w * 2 AS d FROM nmatrix WHERE v > 400 ORDER BY x, y`,
	// BETWEEN / IN over constants (including negated forms).
	`SELECT x, y FROM nmatrix WHERE x BETWEEN 3 AND 9 AND y NOT BETWEEN 2 AND 29 ORDER BY x, y`,
	`SELECT x, y FROM nmatrix WHERE y IN (1, 4, 7) AND x NOT IN (0, 2) ORDER BY x, y`,
	`SELECT x, w FROM nmatrix WHERE w BETWEEN 10 AND 40 ORDER BY x, y`,
	// Numeric builtins.
	`SELECT SQRT(v) AS r, ABS(x - 16) AS a, POWER(v, 0.5) AS p FROM nmatrix WHERE FLOOR(v / 100) = 3 ORDER BY x, y`,
	`SELECT -x AS nx, -v AS nv FROM nmatrix WHERE -x < -28 ORDER BY x, y`,
	// Hybrid projection: CASE falls back per item, the rest vectorize.
	`SELECT x, CASE WHEN v > 100 THEN 1 ELSE 0 END AS c, v + 1 AS p FROM nmatrix WHERE v > 50 ORDER BY x, y`,
	// Value grouping with vectorized keys and aggregate arguments;
	// aggregates skip NULLs.
	`SELECT MOD(x, 5) AS k, COUNT(*), AVG(v), SUM(w), MIN(n), MAX(v) FROM nmatrix WHERE MOD(x + y, 2) = 0 GROUP BY MOD(x, 5) ORDER BY k`,
	`SELECT COUNT(w), COUNT(n), SUM(n) FROM nmatrix`,
	// LIMIT pushdown (with and without a residual filter).
	`SELECT x, y FROM nmatrix WHERE v > 10 LIMIT 7`,
	`SELECT x, y, v FROM nmatrix LIMIT 5`,
	`SELECT x, y FROM nmatrix WHERE v > 10 LIMIT 0`,
	// HAVING without aggregates (the paper's gap-query shape).
	`SELECT x, y FROM nmatrix WHERE x < 20 HAVING y < 5 ORDER BY x, y`,
	// Stepped FROM slicing composed with the batch pipeline.
	`SELECT x, y, v FROM nmatrix[0:32:4][*] WHERE v > 30 ORDER BY x, y`,
	// String fallback (|| is outside the kernel surface).
	`SELECT x || '-' || y AS tag FROM nmatrix WHERE x < 2 ORDER BY x, y`,
}

// setupVectorDB builds a 32x32 array whose w and n columns are NULL on
// most cells, so NULL semantics are exercised on live rows (v is
// always set, keeping every cell live).
func setupVectorDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		CREATE ARRAY nmatrix (x INTEGER DIMENSION[32], y INTEGER DIMENSION[32], v FLOAT DEFAULT 0.0, w FLOAT, n INTEGER);
		UPDATE nmatrix SET v = x * 31 + y;
		UPDATE nmatrix SET w = v / 2 WHERE MOD(x + y, 3) = 0;
		UPDATE nmatrix SET n = x - y WHERE x > 10;
	`)
	return db
}

// TestVectorizedMatchesInterpreted is the identity suite of the
// vectorized engine: every query runs with vectorization forced off
// and forced on, at parallelism 1 and 4, through both the cursor
// (Query) and the materializing (Exec) paths, and every combination
// must render byte-identically to the interpreted serial reference.
// Run under -race in CI, this also vets the kernel paths for data
// races.
func TestVectorizedMatchesInterpreted(t *testing.T) {
	db := setupVectorDB(t)
	for _, q := range vectorQuerySet {
		db.Vectorize(false)
		db.Parallelism(1)
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("reference %s: %v", q, err)
		}
		for _, vec := range []bool{false, true} {
			for _, par := range []int{1, 4} {
				db.Vectorize(vec)
				db.Parallelism(par)
				got, err := db.Query(q)
				if err != nil {
					t.Fatalf("vec=%v par=%d %s: %v", vec, par, q, err)
				}
				if got.String() != want.String() {
					t.Errorf("Query vec=%v par=%d differs for %s:\ngot:\n%s\nwant:\n%s",
						vec, par, q, got.String(), want.String())
				}
				exec, err := db.Exec(q)
				if err != nil {
					t.Fatalf("exec vec=%v par=%d %s: %v", vec, par, q, err)
				}
				if exec.String() != want.String() {
					t.Errorf("Exec vec=%v par=%d differs for %s:\ngot:\n%s\nwant:\n%s",
						vec, par, q, exec.String(), want.String())
				}
			}
		}
	}
}

// TestVectorizedParallelSuite re-runs the morsel-driven executor's
// whole query set with vectorization forced on and off at several
// widths — the walkthrough-shaped coverage of the identity contract.
func TestVectorizedParallelSuite(t *testing.T) {
	db := setupParallelDB(t)
	for _, q := range parallelQuerySet {
		db.Vectorize(false)
		db.Parallelism(1)
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("reference %s: %v", q, err)
		}
		for _, vec := range []bool{false, true} {
			for _, par := range []int{1, 4} {
				db.Vectorize(vec)
				db.Parallelism(par)
				got, err := db.Query(q)
				if err != nil {
					t.Fatalf("vec=%v par=%d %s: %v", vec, par, q, err)
				}
				if got.String() != want.String() {
					t.Errorf("vec=%v par=%d differs for %s:\ngot:\n%s\nwant:\n%s",
						vec, par, q, got.String(), want.String())
				}
			}
		}
	}
}

// TestVectorizedRowsCursor checks the incremental cursor view of the
// vectorized pipeline: rows pulled one at a time equal the
// materialized result, and early Close is safe.
func TestVectorizedRowsCursor(t *testing.T) {
	db := setupVectorDB(t)
	const q = `SELECT x, y, v + 1 AS p FROM nmatrix WHERE MOD(x + y, 5) = 0`
	want := db.MustQuery(q)
	rows, err := db.QueryContext(t.Context(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	r := 0
	for rows.Next() {
		vals := rows.Values()
		for c, v := range vals {
			if wv := want.Get(r, c); wv.String() != v.String() {
				t.Fatalf("row %d col %d: got %s want %s", r, c, v, wv)
			}
		}
		r++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if r != want.NumRows() {
		t.Fatalf("cursor yielded %d rows, want %d", r, want.NumRows())
	}
	// Early close mid-stream must not leak or corrupt later queries.
	rows2, err := db.QueryContext(t.Context(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !rows2.Next() {
		t.Fatal("expected at least one row")
	}
	rows2.Close()
	if got := db.MustQuery(q); got.String() != want.String() {
		t.Fatal("query after early close differs")
	}
}

// TestVectorizedLimitPushdown checks LIMIT stops the chunked scan
// early on both the serial and the parallel path, at the exact row
// counts of the full query's prefix.
func TestVectorizedLimitPushdown(t *testing.T) {
	db := Open()
	const n = 128 // 16384 cells: crosses the parallel chunk gate
	db.MustExec(fmt.Sprintf(
		`CREATE ARRAY big (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n))
	db.MustExec(`UPDATE big SET v = x * 128 + y`)
	const full = `SELECT x, y, v FROM big WHERE MOD(x + y, 3) = 0`
	db.Parallelism(1)
	ref := db.MustQuery(full)
	for _, limit := range []int{1, 7, 100, 5000} {
		q := fmt.Sprintf(`%s LIMIT %d`, full, limit)
		for _, vec := range []bool{false, true} {
			for _, par := range []int{1, 4} {
				db.Vectorize(vec)
				db.Parallelism(par)
				got := db.MustQuery(q)
				wantRows := limit
				if wantRows > ref.NumRows() {
					wantRows = ref.NumRows()
				}
				if got.NumRows() != wantRows {
					t.Fatalf("vec=%v par=%d limit=%d: got %d rows, want %d", vec, par, limit, got.NumRows(), wantRows)
				}
				for r := 0; r < wantRows; r++ {
					for c := 0; c < ref.NumCols(); c++ {
						if got.Get(r, c).String() != ref.Get(r, c).String() {
							t.Fatalf("vec=%v par=%d limit=%d row %d differs", vec, par, limit, r)
						}
					}
				}
			}
		}
	}
	db.Vectorize(true)
}
