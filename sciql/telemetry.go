package sciql

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/sql/ast"
	"repro/internal/telemetry"
)

// TraceEvent is one observation delivered to a trace hook: which
// lifecycle phase a statement reached, when, and how long it took.
type TraceEvent = telemetry.TraceEvent

// TracePhase identifies the lifecycle point of a TraceEvent.
type TracePhase = telemetry.TracePhase

// Trace phases, in statement-lifecycle order.
const (
	TraceParse     = telemetry.TraceParse
	TracePlan      = telemetry.TracePlan
	TraceExecStart = telemetry.TraceExecStart
	TraceFirstRow  = telemetry.TraceFirstRow
	TraceClose     = telemetry.TraceClose
)

// dbTelemetry is the DB's tracing and slow-query-log state. The armed
// checks on the statement path are two atomic loads; with no hook and
// no threshold set, tracing costs nothing else.
type dbTelemetry struct {
	hook   atomic.Pointer[func(TraceEvent)]
	slowNS atomic.Int64
	// slowMu serializes slow-log writes (concurrent connections may
	// cross a threshold simultaneously) and guards slowOut.
	slowMu  sync.Mutex
	slowOut io.Writer
	// Pre-resolved instruments (nil-safe no-ops when the engine carries
	// no registry).
	slowTotal *telemetry.Counter
	stmtHit   *telemetry.Counter
	stmtMiss  *telemetry.Counter
}

func (db *DB) initTelemetry() {
	reg := db.engine.Registry()
	if reg == nil {
		return
	}
	db.tel.slowTotal = reg.Counter("slow_query_total")
	db.tel.stmtHit = reg.Counter("stmt_cache_hit_total")
	db.tel.stmtMiss = reg.Counter("stmt_cache_miss_total")
}

// Metrics returns a point-in-time snapshot of every engine counter and
// gauge: statement counts and latencies by kind, plan/kernel/statement
// cache hits and misses, transaction outcomes, scan volumes, worker
// pool utilization, pinned snapshots and copy-on-write clone volume.
// Histograms appear as <name>_count and <name>_sum_ns pairs. The
// snapshot is a copy; mutating it does not affect the registry.
func (db *DB) Metrics() map[string]int64 {
	reg := db.engine.Registry()
	if reg == nil {
		return map[string]int64{}
	}
	return reg.Snapshot()
}

// MetricsHandler returns an http.Handler rendering the registry in
// Prometheus text exposition format:
//
//	http.Handle("/metrics", db.MetricsHandler())
func (db *DB) MetricsHandler() http.Handler {
	reg := db.engine.Registry()
	if reg == nil {
		return http.NotFoundHandler()
	}
	return reg.Handler()
}

// PublishExpvar publishes the registry as one expvar map variable
// under the given name (for the standard /debug/vars endpoint).
// Publishing twice with one name panics, per expvar semantics.
func (db *DB) PublishExpvar(name string) {
	if reg := db.engine.Registry(); reg != nil {
		reg.Publish(name)
	}
}

// SetTraceHook installs fn to observe statement lifecycle events:
// parse, plan, exec-start, first-row and close, each with its phase
// duration. fn runs synchronously on the statement's goroutine — keep
// it fast, and do not call back into the DB from it. nil removes the
// hook. With no hook installed the statement path pays one atomic load.
func (db *DB) SetTraceHook(fn func(TraceEvent)) {
	if fn == nil {
		db.tel.hook.Store(nil)
		return
	}
	db.tel.hook.Store(&fn)
}

// SetSlowQueryThreshold arms the slow-query log: statements (and
// cursors) whose total wall time reaches d write one structured line
// to w and increment slow_query_total. w nil logs to os.Stderr; d <= 0
// disarms. The log line is tab-separated:
//
//	slow_query	dur=12.3ms	kind=select	rows=420	err=<nil>	query="SELECT ..."
func (db *DB) SetSlowQueryThreshold(d time.Duration, w io.Writer) {
	db.tel.slowMu.Lock()
	db.tel.slowOut = w
	db.tel.slowMu.Unlock()
	if d <= 0 {
		db.tel.slowNS.Store(0)
		return
	}
	db.tel.slowNS.Store(int64(d))
}

// traceArmed reports whether any statement-lifecycle consumer exists.
func (db *DB) traceArmed() bool {
	return db.tel.hook.Load() != nil || db.tel.slowNS.Load() > 0
}

// fire delivers one event to the installed hook, if any.
func (db *DB) fire(ev TraceEvent) {
	if fn := db.tel.hook.Load(); fn != nil {
		(*fn)(ev)
	}
}

// noteClose finishes one traced statement: the TraceClose event plus
// the slow-query log check.
func (db *DB) noteClose(query, kind string, start time.Time, rows int64, err error) {
	d := time.Since(start)
	db.fire(TraceEvent{Phase: TraceClose, Query: query, Kind: kind, D: d, Rows: rows, Err: err, When: time.Now()})
	th := db.tel.slowNS.Load()
	if th <= 0 || int64(d) < th {
		return
	}
	db.tel.slowTotal.Inc()
	db.tel.slowMu.Lock()
	w := db.tel.slowOut
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, "slow_query\tdur=%s\tkind=%s\trows=%d\terr=%v\tquery=%q\n", d, kind, rows, err, query)
	db.tel.slowMu.Unlock()
}

// scriptKind labels a statement batch for trace events and the
// slow-query log: the statement kind when there is exactly one,
// "script" for multi-statement batches.
func scriptKind(stmts []ast.Statement) string {
	if len(stmts) == 1 {
		return exec.StatementKind(stmts[0])
	}
	return "script"
}

// execTraced runs parsed statements on one session, wrapped in trace
// events and the slow-query log when armed; unarmed it is execAll plus
// two atomic loads.
func (db *DB) execTraced(ctx context.Context, eng *exec.Engine, query string, stmts []ast.Statement, args []Arg) (*Result, error) {
	if !db.traceArmed() {
		last, err := execAll(ctx, eng, stmts, args)
		return last, tagQuery(err, query)
	}
	kind := scriptKind(stmts)
	start := time.Now()
	db.fire(TraceEvent{Phase: TraceExecStart, Query: query, Kind: kind, When: start})
	last, err := execAll(ctx, eng, stmts, args)
	err = tagQuery(err, query)
	var rows int64
	if last != nil {
		rows = int64(last.NumRows())
	}
	db.noteClose(query, kind, start, rows, err)
	return last, err
}

// queryTraced opens a streaming cursor on one session, wrapped in
// trace events: TracePlan (timed against the engine's memoized plan
// decision — near zero on a plan-cache hit), TraceExecStart, and — via
// the rowsTrace handed to the cursor — TraceFirstRow and TraceClose
// with the slow-query check at Close. An EXPLAIN [ANALYZE] statement
// executes materialized and streams its rendered plan lines.
func (db *DB) queryTraced(ctx context.Context, eng *exec.Engine, query string, stmt ast.Statement, args []Arg) (*Rows, error) {
	sel, isSel := stmt.(*ast.Select)
	kind := exec.StatementKind(stmt)
	if !db.traceArmed() {
		cur, err := db.queryCursor(ctx, eng, stmt, sel, isSel, args)
		if err != nil {
			return nil, tagQuery(err, query)
		}
		return &Rows{cur: cur, query: query}, nil
	}
	if isSel {
		t0 := time.Now()
		eng.PrimePlan(sel)
		db.fire(TraceEvent{Phase: TracePlan, Query: query, Kind: kind, D: time.Since(t0), When: time.Now()})
	}
	start := time.Now()
	db.fire(TraceEvent{Phase: TraceExecStart, Query: query, Kind: kind, When: start})
	cur, err := db.queryCursor(ctx, eng, stmt, sel, isSel, args)
	if err != nil {
		err = tagQuery(err, query)
		db.noteClose(query, kind, start, 0, err)
		return nil, err
	}
	return &Rows{cur: cur, query: query, tr: &rowsTrace{db: db, query: query, kind: kind, start: start}}, nil
}

// queryCursor opens the cursor behind a Query call: the streaming
// pipeline for SELECT, a dataset-backed cursor over the rendered plan
// lines for EXPLAIN [ANALYZE].
func (db *DB) queryCursor(ctx context.Context, eng *exec.Engine, stmt ast.Statement, sel *ast.Select, isSel bool, args []Arg) (*exec.Cursor, error) {
	if isSel {
		return eng.QueryStream(ctx, sel, collectArgs(args))
	}
	ds, err := eng.ExecContext(ctx, stmt, collectArgs(args))
	if err != nil {
		return nil, err
	}
	return exec.DatasetCursor(ds), nil
}

// rowsTrace carries the per-cursor trace state of an armed query; nil
// on unarmed cursors.
type rowsTrace struct {
	db    *DB
	query string
	kind  string
	start time.Time
	first bool
	n     int64
}
