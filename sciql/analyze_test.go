package sciql

import (
	"io"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// analyzeRowsRe matches the summary line EXPLAIN ANALYZE appends under
// the operator tree.
var analyzeRowsRe = regexp.MustCompile(`^analyze: rows=(\d+) elapsed=`)

// analyzeRows extracts the executed row count from a rendered EXPLAIN
// ANALYZE result.
func analyzeRows(t *testing.T, rs *Result) int {
	t.Helper()
	for r := 0; r < rs.NumRows(); r++ {
		if m := analyzeRowsRe.FindStringSubmatch(rs.Get(r, 0).S); m != nil {
			n, err := strconv.Atoi(m[1])
			if err != nil {
				t.Fatalf("bad analyze row count %q: %v", m[1], err)
			}
			return n
		}
	}
	t.Fatalf("no 'analyze: rows=' line in EXPLAIN ANALYZE output:\n%s", rs)
	return 0
}

// TestExplainAnalyzeAgreesWithQuery is the identity suite of the
// profiler: for every query in the vectorized walkthrough set, at
// vectorization off/on and parallelism 1/4, the row count EXPLAIN
// ANALYZE reports must equal the row count Query returns — the profiled
// execution is the real execution, not an estimate.
func TestExplainAnalyzeAgreesWithQuery(t *testing.T) {
	db := setupVectorDB(t)
	for _, q := range vectorQuerySet {
		for _, vec := range []bool{false, true} {
			for _, par := range []int{1, 4} {
				db.Vectorize(vec)
				db.Parallelism(par)
				want, err := db.Query(q)
				if err != nil {
					t.Fatalf("vec=%v par=%d %s: %v", vec, par, q, err)
				}
				got, err := db.Query("EXPLAIN ANALYZE " + q)
				if err != nil {
					t.Fatalf("EXPLAIN ANALYZE vec=%v par=%d %s: %v", vec, par, q, err)
				}
				if n := analyzeRows(t, got); n != want.NumRows() {
					t.Errorf("vec=%v par=%d %s:\nanalyze reports %d rows, Query returned %d\n%s",
						vec, par, q, n, want.NumRows(), got)
				}
			}
		}
	}
}

// TestProfiledResultsByteIdentical pins the profiler's zero-observer-
// effect contract: query results with the trace/slow-query path armed,
// and after an EXPLAIN ANALYZE has run (arming and disarming the
// per-operator profile), render byte-identically to the unarmed
// reference.
func TestProfiledResultsByteIdentical(t *testing.T) {
	db := setupVectorDB(t)
	for _, q := range vectorQuerySet {
		for _, par := range []int{1, 4} {
			db.Parallelism(par)
			want, err := db.Query(q)
			if err != nil {
				t.Fatalf("reference par=%d %s: %v", par, q, err)
			}
			db.SetTraceHook(func(TraceEvent) {})
			db.SetSlowQueryThreshold(1, io.Discard)
			armed, err := db.Query(q)
			db.SetTraceHook(nil)
			db.SetSlowQueryThreshold(0, nil)
			if err != nil {
				t.Fatalf("armed par=%d %s: %v", par, q, err)
			}
			if armed.String() != want.String() {
				t.Errorf("armed result differs par=%d %s:\ngot:\n%s\nwant:\n%s",
					par, q, armed.String(), want.String())
			}
			if _, err := db.Query("EXPLAIN ANALYZE " + q); err != nil {
				t.Fatalf("EXPLAIN ANALYZE par=%d %s: %v", par, q, err)
			}
			after, err := db.Query(q)
			if err != nil {
				t.Fatalf("post-analyze par=%d %s: %v", par, q, err)
			}
			if after.String() != want.String() {
				t.Errorf("post-analyze result differs par=%d %s:\ngot:\n%s\nwant:\n%s",
					par, q, after.String(), want.String())
			}
		}
	}
}

// TestExplainAnalyzeRendersOperatorStats checks the rendered tree
// itself: every executed operator carries wall time and row counts, the
// scan reports chunk and cell volume, and vectorized execution is
// annotated as such.
func TestExplainAnalyzeRendersOperatorStats(t *testing.T) {
	db := setupVectorDB(t)
	q := `EXPLAIN ANALYZE SELECT x, y, v FROM nmatrix WHERE v > 100 ORDER BY x, y LIMIT 10`
	for _, par := range []int{1, 4} {
		db.Parallelism(par)
		rs, err := db.Query(q)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		out := rs.String()
		for _, want := range []string{
			"Scan nmatrix", "time=", "rows=", "chunks=", "cells=",
			"Filter", "rows_in=", "Sort", "Limit", "analyze: rows=10",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("par=%d: EXPLAIN ANALYZE output missing %q:\n%s", par, want, out)
			}
		}
	}
	db.Parallelism(1)
	db.Vectorize(true)
	rs, err := db.Query(`EXPLAIN ANALYZE SELECT x, y FROM nmatrix WHERE v > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rs.String(), "[vectorized]") {
		t.Errorf("vectorized EXPLAIN ANALYZE missing [vectorized] annotation:\n%s", rs)
	}
}

// TestExplainAnalyzePerScheme profiles the same filter scan over every
// physical storage scheme, serial and morsel-parallel: the reported
// row count must match the query's result regardless of how the store
// chunks its cells. The CI concurrency-stress step re-runs this under
// -race so the per-chunk profile flushes are vetted against the chunk
// fan-out.
func TestExplainAnalyzePerScheme(t *testing.T) {
	const q = `SELECT x, y, a FROM grid WHERE MOD(x + y, 5) = 0 AND a > 100`
	for _, scheme := range []string{"virtual", "tabular", "dorder", "slab"} {
		t.Run(scheme, func(t *testing.T) {
			db := scanDB(t, scheme)
			for _, par := range []int{1, 4} {
				db.Parallelism(par)
				want, err := db.Query(q)
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				got, err := db.Query("EXPLAIN ANALYZE " + q)
				if err != nil {
					t.Fatalf("EXPLAIN ANALYZE par=%d: %v", par, err)
				}
				if n := analyzeRows(t, got); n != want.NumRows() {
					t.Errorf("scheme=%s par=%d: analyze reports %d rows, Query returned %d\n%s",
						scheme, par, n, want.NumRows(), got)
				}
			}
		})
	}
}

// TestExplainAnalyzeThroughAllSurfaces runs EXPLAIN ANALYZE through
// Exec, Query, QueryContext (streaming) and a prepared statement; each
// surface must return the rendered tree.
func TestExplainAnalyzeThroughAllSurfaces(t *testing.T) {
	db := setupVectorDB(t)
	const q = `EXPLAIN ANALYZE SELECT COUNT(*) FROM nmatrix WHERE v > 100`
	check := func(surface string, rs *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", surface, err)
		}
		if !strings.Contains(rs.String(), "analyze: rows=1") {
			t.Errorf("%s: missing analyze summary:\n%s", surface, rs)
		}
	}
	rs, err := db.Exec(q)
	check("Exec", rs, err)
	rs, err = db.Query(q)
	check("Query", rs, err)
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	rs, err = st.Query()
	check("prepared Query", rs, err)
	conn, err := db.Conn(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rows, err := conn.QueryContext(t.Context(), q)
	if err != nil {
		t.Fatal(err)
	}
	var sawSummary bool
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(line, "analyze: rows=1") {
			sawSummary = true
		}
	}
	rows.Close()
	if !sawSummary {
		t.Error("Conn.QueryContext: missing analyze summary in streamed plan")
	}
}
