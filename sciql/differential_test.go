package sciql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// diffSchemes is the full storage matrix the differential oracle runs
// over: adaptive (no hint) plus every forced scheme.
var diffSchemes = []string{"", "virtual", "slab", "tabular", "dorder"}

// diffDB builds a 96x96 grid (9216 cells, above the chunked-parallel
// gate) with two dense float attributes and one mostly-NULL integer
// attribute, so generated queries exercise promotion, NULL semantics
// and holes under every storage scheme.
func diffDB(t testing.TB, scheme string) *DB {
	t.Helper()
	db := Open()
	if scheme != "" {
		db.SetStorageHint("grid", scheme, 16)
	}
	db.MustExec(`CREATE ARRAY grid (x INTEGER DIMENSION[96], y INTEGER DIMENSION[96],
		a FLOAT DEFAULT 0.0, b FLOAT DEFAULT 1.0, c INTEGER)`)
	db.MustExec(`UPDATE grid SET a = x * 96 + y`)
	db.MustExec(`UPDATE grid SET b = x - y`)
	db.MustExec(`UPDATE grid SET c = MOD(x * 7 + y * 3, 13) WHERE MOD(x + y, 4) = 0`)
	return db
}

// queryGen derives SciQL SELECTs from a fixed-seed PRNG. Every query
// it emits is valid over the diffDB grid; the shapes cover arithmetic
// and NULL-bearing projections, slice + predicate scans, BETWEEN/IN,
// value grouping with the full aggregate set, ORDER BY and LIMIT.
type queryGen struct{ r *rand.Rand }

func (g *queryGen) pick(ss ...string) string { return ss[g.r.Intn(len(ss))] }

// scalar yields an expression over the grid's columns. Division and
// MOD keep randomly chosen nonzero literals on the right so NULLs come
// from the c attribute, not from accidental /0 everywhere.
func (g *queryGen) scalar(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(6) {
		case 0:
			return "x"
		case 1:
			return "y"
		case 2:
			return "a"
		case 3:
			return "b"
		case 4:
			return "c"
		default:
			return fmt.Sprintf("%d", g.r.Intn(97))
		}
	}
	l, r := g.scalar(depth-1), g.scalar(depth-1)
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r)
	case 3:
		return fmt.Sprintf("(%s / %d)", l, 1+g.r.Intn(9))
	default:
		return fmt.Sprintf("MOD(%s, %d)", l, 2+g.r.Intn(11))
	}
}

// predicate yields a WHERE-clause boolean over the grid.
func (g *queryGen) predicate(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return fmt.Sprintf("%s %s %s", g.scalar(1), g.pick("<", "<=", ">", ">=", "=", "<>"), g.scalar(1))
		case 1:
			lo := g.r.Intn(60)
			return fmt.Sprintf("%s BETWEEN %d AND %d", g.pick("x", "y", "a", "c"), lo, lo+g.r.Intn(40))
		case 2:
			return fmt.Sprintf("%s IN (%d, %d, %d)", g.pick("x", "y", "c"), g.r.Intn(16), g.r.Intn(16), g.r.Intn(16))
		case 3:
			return fmt.Sprintf("c IS %sNULL", g.pick("", "NOT "))
		default:
			return fmt.Sprintf("MOD(x * %d + y, %d) = %d", 1+g.r.Intn(31), 3+g.r.Intn(9), g.r.Intn(3))
		}
	}
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s AND %s)", g.predicate(depth-1), g.predicate(depth-1))
	case 1:
		return fmt.Sprintf("(%s OR %s)", g.predicate(depth-1), g.predicate(depth-1))
	default:
		return fmt.Sprintf("NOT (%s)", g.predicate(depth-1))
	}
}

// from yields the FROM item: the whole grid or a random (possibly
// stepped) slice of it.
func (g *queryGen) from() string {
	if g.r.Intn(2) == 0 {
		return "grid"
	}
	dim := func() string {
		switch g.r.Intn(3) {
		case 0:
			return "[*]"
		case 1:
			lo := g.r.Intn(48)
			return fmt.Sprintf("[%d:%d]", lo, lo+1+g.r.Intn(48))
		default:
			lo := g.r.Intn(32)
			return fmt.Sprintf("[%d:%d:%d]", lo, lo+8+g.r.Intn(64), 2+g.r.Intn(6))
		}
	}
	return "grid" + dim() + dim()
}

// query yields one complete SELECT. Scan-shaped queries project x and
// y first (so cross-scheme sorting has a stable key) plus random
// expressions; aggregate-shaped queries group on MOD keys and order by
// the key. LIMIT only rides on fully ordered queries, so the chosen
// rows cannot depend on scan order.
func (g *queryGen) query() string {
	if g.r.Intn(4) == 0 { // aggregate shape
		k := 2 + g.r.Intn(7)
		aggs := []string{"COUNT(*)"}
		for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
			aggs = append(aggs, fmt.Sprintf("%s(%s)", g.pick("SUM", "AVG", "MIN", "MAX", "COUNT"), g.scalar(1)))
		}
		q := fmt.Sprintf("SELECT MOD(x, %d) AS k0, %s FROM %s", k, strings.Join(aggs, ", "), g.from())
		if g.r.Intn(2) == 0 {
			q += " WHERE " + g.predicate(2)
		}
		return q + fmt.Sprintf(" GROUP BY MOD(x, %d) ORDER BY k0", k)
	}
	items := []string{"x", "y"}
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		items = append(items, fmt.Sprintf("%s AS e%d", g.scalar(2), i))
	}
	q := fmt.Sprintf("SELECT %s FROM %s", strings.Join(items, ", "), g.from())
	if g.r.Intn(4) != 0 {
		q += " WHERE " + g.predicate(2)
	}
	if g.r.Intn(3) == 0 {
		q += " ORDER BY x, y"
		if g.r.Intn(2) == 0 {
			q += fmt.Sprintf(" LIMIT %d", 1+g.r.Intn(50))
		}
	}
	return q
}

// joinQuery yields a two-source hash-join SELECT. The right side is a
// small slice so the output stays bounded; every column is qualified,
// both because two sources are in scope and because the zone-map
// skipper only trusts qualified names under joins. Half the queries
// omit ORDER BY, pinning the join's deterministic output order
// (build-side choice, partitioning and probe merging must all
// reproduce the serial row order byte-for-byte).
func (g *queryGen) joinQuery() string {
	rxl, ryl := g.r.Intn(80), g.r.Intn(80)
	right := fmt.Sprintf("grid[%d:%d][%d:%d]", rxl, rxl+2+g.r.Intn(6), ryl, ryl+2+g.r.Intn(6))
	on := "l.x = r.x AND l.y = r.y"
	if g.r.Intn(3) == 0 {
		on = "l.y = r.y"
	}
	q := fmt.Sprintf(
		"SELECT l.x, l.y, r.x AS rx, r.y AS ry, (l.a + r.b) AS e0, r.c AS e1 FROM grid AS l JOIN %s AS r ON %s",
		right, on)
	switch g.r.Intn(3) {
	case 0:
		q += fmt.Sprintf(" WHERE l.a < %d", g.r.Intn(9216))
	case 1:
		q += fmt.Sprintf(" WHERE l.b >= %d AND r.c IS NOT NULL", g.r.Intn(60)-30)
	}
	if g.r.Intn(2) == 0 {
		q += " ORDER BY l.x, l.y, rx, ry"
	}
	return q
}

// diffQueries is the deterministic random query set: a fixed seed, so
// every run, every scheme and every engine configuration sees exactly
// the same SQL. The tail adds hash-join shapes over the same grid.
func diffQueries() []string {
	g := &queryGen{r: rand.New(rand.NewSource(0x5c191))}
	out := make([]string, 0, 32)
	for len(out) < 24 {
		out = append(out, g.query())
	}
	for len(out) < 32 {
		out = append(out, g.joinQuery())
	}
	return out
}

// sortedLines renders a result and sorts the rows, giving an
// order-insensitive fingerprint for cross-scheme comparison (schemes
// agree on the row set; ordering is only pinned within a scheme).
func sortedLines(rs *Result) string {
	lines := renderResult(rs)
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestDifferentialRandomQueries is the engine's differential oracle:
// every generated query must render byte-identically across chunk
// skipping on/off × vectorized on/off × parallelism 1/4 within each
// storage scheme (the serial interpreted unskipped run is the
// reference), and the sorted row sets must agree across all five
// schemes. Run under -race in CI this also vets the chunk fan-out,
// kernel and partitioned-join paths for data races.
func TestDifferentialRandomQueries(t *testing.T) {
	queries := diffQueries()
	crossScheme := make(map[int]map[string]string) // query index -> scheme -> sorted rows
	for i := range queries {
		crossScheme[i] = make(map[string]string)
	}
	for _, scheme := range diffSchemes {
		name := scheme
		if name == "" {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			db := diffDB(t, scheme)
			for qi, q := range queries {
				db.Vectorize(false)
				db.Parallelism(1)
				db.ChunkSkip(false)
				ref, err := db.Query(q)
				if err != nil {
					t.Fatalf("reference %s: %v", q, err)
				}
				want := ref.String()
				for _, skip := range []bool{false, true} {
					for _, vec := range []bool{false, true} {
						for _, par := range []int{1, 4} {
							db.ChunkSkip(skip)
							db.Vectorize(vec)
							db.Parallelism(par)
							got, err := db.Query(q)
							if err != nil {
								t.Fatalf("skip=%v vec=%v par=%d %s: %v", skip, vec, par, q, err)
							}
							if got.String() != want {
								t.Errorf("skip=%v vec=%v par=%d differs for %s:\ngot:\n%s\nwant:\n%s",
									skip, vec, par, q, got.String(), want)
							}
						}
					}
				}
				crossScheme[qi][scheme] = sortedLines(ref)
			}
		})
	}
	// Cross-scheme: the row set of every query is a property of the
	// data, not of the physical layout.
	base := diffSchemes[0]
	for qi, q := range queries {
		want, ok := crossScheme[qi][base]
		if !ok {
			continue // scheme subtest failed before recording
		}
		for _, scheme := range diffSchemes[1:] {
			got, ok := crossScheme[qi][scheme]
			if !ok {
				continue
			}
			if got != want {
				t.Errorf("scheme %q disagrees with %q for %s:\ngot:\n%s\nwant:\n%s",
					scheme, base, q, got, want)
			}
		}
	}
}
