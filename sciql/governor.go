package sciql

import (
	"context"
	"errors"
	"time"

	"repro/internal/governor"
)

// This file is the public face of the query resource governor: memory
// budgets, statement timeouts, admission control, drain, and the typed
// errors they surface. The knobs are setup-time calls like Parallelism
// and Vectorize — settle them before issuing concurrent statements —
// except Drain, which is explicitly a shutdown-time call.

// ErrMemoryBudget terminates a statement whose estimated working-set
// memory exceeded the per-query or database-wide limit configured with
// SetMemoryLimit. Test with errors.Is.
var ErrMemoryBudget = governor.ErrMemoryBudget

// ErrStatementTimeout terminates a statement that ran longer than the
// deadline configured with SetStatementTimeout. It is distinct from
// caller cancellation: canceling the context you passed in still
// surfaces context.Canceled (or your cause), never this error.
var ErrStatementTimeout = governor.ErrStatementTimeout

// ErrAdmission rejects a statement that could not get an execution
// slot: the admission queue was full, the queue wait expired, or the
// database is draining.
var ErrAdmission = governor.ErrAdmission

// PanicError is the error a statement returns when execution panicked.
// The panic is contained at the statement boundary (and inside every
// parallel worker): the session and database remain usable, the
// statement's catalog snapshot is released, and the panic value, the
// query text and the goroutine stack are preserved here for the bug
// report. Retrieve with errors.As.
type PanicError = governor.PanicError

// SetMemoryLimit arms memory budgeting: perQuery bounds the estimated
// working-set bytes of any single statement, total bounds the sum
// across all concurrently-running statements. A statement that would
// exceed either limit aborts with ErrMemoryBudget (wrapped; test with
// errors.Is) and releases everything it held. Zero or negative
// disables that limit; both zero (the default) makes budgeting free —
// scans charge nothing. Accounting is estimated column/row footprint,
// not allocator-exact bytes.
func (db *DB) SetMemoryLimit(perQuery, total int64) {
	db.engine.Gov().SetMemoryLimit(perQuery, total)
}

// SetStatementTimeout bounds the wall-clock time of every statement
// and cursor. A statement (or an open Rows cursor) that exceeds d
// fails with ErrStatementTimeout. The timer starts at admission and,
// for QueryContext, covers the cursor's whole lifetime — a client that
// sits on an open cursor past the deadline gets the timeout on its
// next call. d <= 0 (the default) disables the timeout.
func (db *DB) SetStatementTimeout(d time.Duration) {
	db.engine.Gov().SetStatementTimeout(d)
}

// SetMaxConcurrentQueries arms admission control: at most n statements
// execute at once, and up to 2n more wait in an admission queue for at
// most one second before failing with ErrAdmission (tune the queue
// with SetAdmissionQueue). A Rows cursor holds its slot until Close.
// n <= 0 (the default) disables admission control.
func (db *DB) SetMaxConcurrentQueries(n int) {
	db.engine.Gov().SetMaxConcurrentQueries(n)
}

// SetAdmissionQueue tunes the admission wait queue: at most depth
// statements wait for a slot, each for at most wait, before failing
// with ErrAdmission. depth 0 rejects immediately when all slots are
// busy. Only meaningful once SetMaxConcurrentQueries has armed
// admission control.
func (db *DB) SetAdmissionQueue(depth int, wait time.Duration) {
	db.engine.Gov().SetAdmissionQueue(depth, wait)
}

// Drain moves the database into shutdown mode: new statements are
// rejected with ErrAdmission, queued statements are bounced, and Drain
// blocks until every admitted statement (and open cursor) finishes or
// ctx expires. Drain requires admission control to be armed
// (SetMaxConcurrentQueries), since only admitted statements are
// tracked.
func (db *DB) Drain(ctx context.Context) error {
	return db.engine.Gov().Drain(ctx)
}

// tagQuery attaches the query text to a contained-panic error
// surfacing through the public API, so the bug report carries the
// statement that crashed. Other errors pass through untouched.
func tagQuery(err error, query string) error {
	if err == nil {
		return nil
	}
	var pe *PanicError
	if errors.As(err, &pe) && pe.Query == "" {
		pe.Query = query
	}
	return err
}
