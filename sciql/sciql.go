// Package sciql is the public API of the SciQL engine: an embedded,
// in-memory science database where arrays are first-class citizens
// alongside tables, per "SciQL, A Query Language for Science
// Applications" (Kersten, Nes, Zhang, Ivanova — EDBT 2011).
//
// Quick start:
//
//	db := sciql.Open()
//	db.MustExec(`CREATE ARRAY matrix (
//	    x INTEGER DIMENSION[4],
//	    y INTEGER DIMENSION[4],
//	    v FLOAT DEFAULT 0.0)`)
//	db.MustExec(`UPDATE matrix SET v = x + y`)
//	rs, _ := db.Query(`SELECT [x], [y], AVG(v) FROM matrix
//	                   GROUP BY DISTINCT matrix[x:x+2][y:y+2]`)
//	fmt.Print(rs)
package sciql

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/exec"
	"repro/internal/sql/ast"
	"repro/internal/storage"
	"repro/internal/value"
)

// DB is an embedded SciQL database. DB methods are safe for
// concurrent use: each Exec/Query opens an implicit connection (a
// private session over the shared, versioned catalog), runs its
// statements against one pinned catalog snapshot, and discards the
// session. For session state that must persist across statements —
// transactions, or a prepared workload on one cursor — open an
// explicit connection with Conn; connections execute concurrently
// with each other and with DB-level calls. The configuration knobs
// (Parallelism, Vectorize, SetStorageHint, RegisterExternal,
// SetPlanCacheSize) are setup-time calls: settle them before issuing
// concurrent statements.
type DB struct {
	// engine is the root session: it carries the shared state
	// (catalog, caches, config) every connection derives from, and
	// serves the read-only helpers (Explain, LookupArray).
	engine *exec.Engine
	// mu guards the statement cache; execution never holds it.
	mu    sync.Mutex
	cache *stmtCache
	// tel is the tracing/slow-query-log state (see telemetry.go).
	tel dbTelemetry
}

// Result is a materialized query result.
type Result = exec.Dataset

// Value is the dynamic scalar type of result cells.
type Value = value.Value

// Open creates an empty database.
func Open() *DB {
	db := &DB{engine: exec.New(), cache: newStmtCache(defaultPlanCacheSize)}
	db.initTelemetry()
	return db
}

// Wrap exposes an existing engine through the public API (the
// integration session in internal/core uses it to serve the examples
// and tools without a second catalog).
func Wrap(e *exec.Engine) *DB {
	db := &DB{engine: e, cache: newStmtCache(defaultPlanCacheSize)}
	db.initTelemetry()
	return db
}

// Close releases the database's session-level resources: catalog
// snapshots still pinned by abandoned cursors — of any session,
// including the implicit per-call ones — are freed, so the
// snapshots_pinned gauge returns to zero. The in-memory catalog itself
// needs no teardown; Close exists for resource-hygiene symmetry with
// database/sql and is safe to call more than once. Call it after
// in-flight statements have finished.
func (db *DB) Close() error {
	db.engine.ReleaseAllCursorPins()
	return nil
}

// Exec runs one or more semicolon-separated statements, returning the
// result of the last one (nil for DDL/DML).
func (db *DB) Exec(sql string, args ...Arg) (*Result, error) {
	return db.ExecContext(context.Background(), sql, args...)
}

// ExecContext is Exec bound to a context: cancellation stops long
// scans — serial loops check periodically, the morsel pool checks in
// its worker loop — and the call returns ctx.Err(). The statements
// run on an implicit connection: a multi-statement script (including
// BEGIN; ...; COMMIT) shares one session, and concurrent ExecContext
// calls do not serialize against each other.
func (db *DB) ExecContext(ctx context.Context, sql string, args ...Arg) (*Result, error) {
	stmts, err := db.compile(sql)
	if err != nil {
		return nil, err
	}
	return db.execTraced(ctx, db.engine.NewSession(), sql, stmts, args)
}

// MustExec is Exec that panics on error; for setup code and examples.
func (db *DB) MustExec(sql string, args ...Arg) *Result {
	rs, err := db.Exec(sql, args...)
	if err != nil {
		panic(fmt.Sprintf("sciql: %v\nSQL: %s", err, sql))
	}
	return rs
}

// Query runs a single SELECT and returns its rows, materialized. It
// is a thin wrapper over the same cursor pipeline QueryContext
// streams from: one implementation, two views.
func (db *DB) Query(sql string, args ...Arg) (*Result, error) {
	rows, err := db.QueryContext(context.Background(), sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.materialize()
}

// QueryContext runs a single SELECT as a streaming cursor: rows are
// pulled incrementally from the executor (for eligible plans the scan
// itself is incremental; other shapes execute fully first), and
// canceling ctx aborts the query. Always Close the returned Rows.
// The cursor runs on an implicit connection against the catalog
// snapshot pinned when the query starts, so concurrent DML commits
// never change (or tear) the rows an open cursor returns.
func (db *DB) QueryContext(ctx context.Context, sql string, args ...Arg) (*Rows, error) {
	sel, err := db.compileSelect(sql)
	if err != nil {
		return nil, err
	}
	return db.queryTraced(ctx, db.engine.NewSession(), sql, sel, args)
}

// compileSelect parses (through the statement cache) and requires a
// single SELECT — or an EXPLAIN [ANALYZE] SELECT, whose rendered plan
// is itself a one-column result.
func (db *DB) compileSelect(sql string) (ast.Statement, error) {
	stmts, err := db.compile(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("Query requires a single SELECT; got %d statements", len(stmts))
	}
	switch stmts[0].(type) {
	case *ast.Select, *ast.Explain:
		return stmts[0], nil
	}
	return nil, fmt.Errorf("Query requires a SELECT; use Exec for %T", stmts[0])
}

// MustQuery is Query that panics on error.
func (db *DB) MustQuery(sql string, args ...Arg) *Result {
	rs, err := db.Query(sql, args...)
	if err != nil {
		panic(fmt.Sprintf("sciql: %v\nSQL: %s", err, sql))
	}
	return rs
}

// QueryArray runs a SELECT whose target list carries dimension
// qualifiers ([x], [y], v) and coerces the result into an array
// (§3.3): the dimension columns become dimensions with bounds from the
// minimal bounding box of the rows.
func (db *DB) QueryArray(sql string, args ...Arg) (*Array, error) {
	rs, err := db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	arr, err := db.engine.DatasetToArray(rs, "result")
	if err != nil {
		return nil, err
	}
	return &Array{a: arr}, nil
}

// Arg is a named host-parameter binding for ?name placeholders.
type Arg struct {
	Name  string
	Value Value
}

// Int binds an integer parameter.
func Int(name string, v int64) Arg { return Arg{name, value.NewInt(v)} }

// Float binds a float parameter.
func Float(name string, v float64) Arg { return Arg{name, value.NewFloat(v)} }

// String binds a string parameter.
func String(name string, v string) Arg { return Arg{name, value.NewString(v)} }

// Time binds a timestamp parameter.
func Time(name string, t time.Time) Arg { return Arg{name, value.NewTime(t)} }

func collectArgs(args []Arg) map[string]Value {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]Value, len(args))
	for _, a := range args {
		m[a.Name] = a.Value
	}
	return m
}

// RegisterExternal registers a Go function under an EXTERNAL NAME so
// that CREATE FUNCTION ... EXTERNAL NAME 'x' can bind to it (§6.2
// black-box functions). Array arguments arrive as *sciql.Array values
// via AsArray.
func (db *DB) RegisterExternal(externalName string, fn func(args []Value) (Value, error)) {
	db.engine.RegisterExternal(externalName, fn)
}

// SetStorageHint forces or tunes the storage scheme chosen for the
// named array at creation time: one of "virtual", "tabular", "dorder",
// "slab" ("" restores the adaptive policy). SlabSize tunes the slab
// edge length when the slab scheme is used.
func (db *DB) SetStorageHint(arrayName, scheme string, slabSize int64) {
	db.engine.SetStorageHint(arrayName, storage.Hints{ForceScheme: scheme, SlabSize: slabSize})
}

// Parallelism sets the worker count for morsel-driven SELECT
// execution: array scans, filters, value group-bys and structural
// tilings split into fixed-size morsels executed across n workers
// with per-worker partial aggregates merged at the end. n <= 0
// selects GOMAXPROCS; 1 (the default) runs the serial interpreter.
// Queries whose plan shape or expressions don't qualify fall back to
// the serial interpreter transparently, with identical results.
// Parallel results are deterministic (partials merge in morsel
// order); float SUM/AVG may differ from serial execution in last-bit
// summation order on non-integer data, as in any parallel database.
func (db *DB) Parallelism(n int) {
	db.engine.SetParallelism(n)
}

// Vectorize toggles vectorized execution: filters and projections
// whose expressions fit the kernel surface (arithmetic, comparisons,
// three-valued logic, IS NULL, BETWEEN/IN over constants, numeric
// builtins) compile into bulk column-at-a-time kernels over scan
// batches instead of walking the expression tree per cell. On by
// default; unsupported expressions fall back to the interpreter per
// item, and results are byte-identical either way. The knob exists
// for benchmarking and the identity test suite.
func (db *DB) Vectorize(on bool) {
	db.engine.SetVectorized(on)
}

// ChunkSkip toggles zone-map chunk skipping. When on (the default),
// scans consult per-chunk min/max/null statistics and skip chunks no
// row of which can satisfy the pushed-down filter conjuncts; skipped
// chunks surface as chunks_skipped in EXPLAIN ANALYZE. Skipping is
// conservative — predicates are still re-evaluated on surviving
// chunks — so results are byte-identical either way. The knob exists
// for benchmarking and the identity test suite.
func (db *DB) ChunkSkip(on bool) {
	db.engine.SetChunkSkip(on)
}

// Explain compiles sql through the query planner (parse → plan →
// optimize) and returns the rendered operator tree plus an execution-
// mode line, without running anything. sql may be a SELECT or an
// EXPLAIN SELECT; the statement is compiled directly — not glued onto
// an "EXPLAIN " prefix — so leading comments work and multi-statement
// input is rejected instead of silently executed.
func (db *DB) Explain(sql string) (string, error) {
	stmts, err := db.compile(sql)
	if err != nil {
		return "", err
	}
	if len(stmts) != 1 {
		return "", fmt.Errorf("Explain requires a single statement; got %d", len(stmts))
	}
	var sel *ast.Select
	switch s := stmts[0].(type) {
	case *ast.Select:
		sel = s
	case *ast.Explain:
		sel = s.Select
	default:
		return "", fmt.Errorf("EXPLAIN supports SELECT statements, got %T", s)
	}
	rs := db.engine.ExplainSelect(sel)
	var sb strings.Builder
	for r := 0; r < rs.NumRows(); r++ {
		sb.WriteString(rs.Get(r, 0).S)
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// Array wraps an engine array for Go-side access (workload loaders and
// black-box functions use it to avoid SQL round-trips).
type Array struct{ a *array.Array }

// AsArray extracts an array handle from an Array-typed Value (black-
// box function arguments).
func AsArray(v Value) (*Array, bool) {
	if v.Typ != value.Array || v.Null {
		return nil, false
	}
	a, ok := v.A.(*array.Array)
	if !ok {
		return nil, false
	}
	return &Array{a: a}, true
}

// Wrap boxes the array back into a Value (black-box return values).
func (a *Array) Wrap() Value { return value.NewArray(a.a) }

// LookupArray fetches a catalog array by name for bulk Go-side access.
func (db *DB) LookupArray(name string) (*Array, bool) {
	arr, ok := db.engine.Cat.Array(name)
	if !ok {
		return nil, false
	}
	return &Array{a: arr}, true
}

// NumDims returns the array's dimensionality.
func (a *Array) NumDims() int { return a.a.NumDims() }

// Scheme reports the physical storage scheme currently backing the
// array (Fig. 1: virtual, tabular, dorder, slab).
func (a *Array) Scheme() string { return a.a.Store.Scheme() }

// Len returns the number of materialized (non-hole) cells.
func (a *Array) Len() int { return a.a.Store.Len() }

// Get reads one attribute at the given coordinates; out-of-bounds and
// holes read as NULL.
func (a *Array) Get(coords []int64, attr int) Value { return a.a.Get(coords, attr) }

// Set writes one attribute at the given coordinates.
func (a *Array) Set(coords []int64, attr int, v Value) error { return a.a.Set(coords, attr, v) }

// SetFloat is a convenience bulk setter.
func (a *Array) SetFloat(coords []int64, attr int, f float64) error {
	return a.a.Set(coords, attr, value.NewFloat(f))
}

// SetInt is a convenience bulk setter.
func (a *Array) SetInt(coords []int64, attr int, i int64) error {
	return a.a.Set(coords, attr, value.NewInt(i))
}

// Scan visits every non-hole cell; coords and vals are reused between
// calls. Returning false stops the scan.
func (a *Array) Scan(visit func(coords []int64, vals []Value) bool) {
	a.a.Store.Scan(visit)
}

// Bounds returns the array's current bounding box (inclusive).
func (a *Array) Bounds() (lo, hi []int64, err error) { return a.a.BoundingBox() }

// NewInt builds an integer value (black-box helper).
func NewInt(i int64) Value { return value.NewInt(i) }

// NewFloat builds a float value.
func NewFloat(f float64) Value { return value.NewFloat(f) }

// NewString builds a string value.
func NewString(s string) Value { return value.NewString(s) }

// NewTime builds a timestamp value.
func NewTime(t time.Time) Value { return value.NewTime(t) }

// NewNullFloat builds a NULL float value.
func NewNullFloat() Value { return value.NewNull(value.Float) }
