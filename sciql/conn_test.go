package sciql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// snapDB builds the shared database of the concurrency suite: an
// 8192-cell array (past the parallel-scan gate) whose every cell
// carries the "version" the last committed writer stamped.
func snapDB(t *testing.T, par int) *DB {
	t.Helper()
	db := Open()
	db.Parallelism(par)
	db.MustExec(`CREATE ARRAY m (x INTEGER DIMENSION[128], y INTEGER DIMENSION[64], v FLOAT DEFAULT 0.0)`)
	return db
}

// TestSnapshotIdentityUnderConcurrentWrites is the isolation suite:
// N reader goroutines stream Rows while a writer commits versions in
// explicit transactions (plus DDL churn on an unrelated array). Every
// reader must observe exactly one version — all rows byte-identical
// to a serial scan of that version — at parallelism 1 and 4.
func TestSnapshotIdentityUnderConcurrentWrites(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			db := snapDB(t, par)
			const (
				readers  = 4
				versions = 6
				rows     = 128 * 64
			)
			// serial[k] is the rendered result of a serial scan at
			// version k, computed up front on a quiesced database: the
			// reference every concurrent read must be byte-identical to.
			serial := make([]string, versions+1)
			for k := 0; k <= versions; k++ {
				db.MustExec(fmt.Sprintf(`UPDATE m SET v = %d`, k))
				serial[k] = db.MustQuery(`SELECT x, y, v FROM m`).String()
			}
			db.MustExec(`UPDATE m SET v = 0`)

			var wg sync.WaitGroup
			var stop atomic.Bool
			errs := make(chan error, readers+1)

			// Writer: stamps versions 1..versions inside explicit
			// transactions, with DDL committing between them so the
			// catalog version churns under the readers' plan caches.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stop.Store(true)
				wconn, err := db.Conn(context.Background())
				if err != nil {
					errs <- err
					return
				}
				defer wconn.Close()
				for k := 1; k <= versions; k++ {
					tx, err := wconn.Begin()
					if err != nil {
						errs <- err
						return
					}
					if _, err := tx.Exec(fmt.Sprintf(`UPDATE m SET v = %d`, k)); err != nil {
						errs <- err
						return
					}
					if err := tx.Commit(); err != nil {
						errs <- err
						return
					}
					ddl := fmt.Sprintf(`CREATE ARRAY churn%d (x INTEGER DIMENSION[2], w FLOAT DEFAULT 0.0)`, k)
					if _, err := wconn.Exec(ddl); err != nil {
						errs <- err
						return
					}
					if _, err := wconn.Exec(fmt.Sprintf(`DROP ARRAY churn%d`, k)); err != nil {
						errs <- err
						return
					}
				}
			}()

			// Readers: stream full scans on private connections until
			// the writer finishes; every drained cursor must match one
			// serial reference exactly.
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					conn, err := db.Conn(context.Background())
					if err != nil {
						errs <- err
						return
					}
					defer conn.Close()
					for !stop.Load() {
						rws, err := conn.QueryContext(context.Background(), `SELECT x, y, v FROM m`)
						if err != nil {
							errs <- err
							return
						}
						got, err := rws.materialize()
						if err != nil {
							errs <- err
							return
						}
						if got.NumRows() != rows {
							errs <- fmt.Errorf("scan saw %d rows, want %d", got.NumRows(), rows)
							return
						}
						rendered := got.String()
						matched := false
						for k := 0; k <= versions; k++ {
							if rendered == serial[k] {
								matched = true
								break
							}
						}
						if !matched {
							errs <- fmt.Errorf("reader saw a torn snapshot (no version matches):\n%.200s", rendered)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentCursorsInterleave pins the tentpole's "no shared
// statement mutex" claim structurally: two connections hold open
// streaming cursors at once and alternate Next calls — under any
// per-database statement lock this interleaving would deadlock (the
// first cursor would pin the engine until Close).
func TestConcurrentCursorsInterleave(t *testing.T) {
	db := snapDB(t, 1)
	c1, _ := db.Conn(context.Background())
	c2, _ := db.Conn(context.Background())
	defer c1.Close()
	defer c2.Close()
	r1, err := c1.QueryContext(context.Background(), `SELECT x, y, v FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := c2.QueryContext(context.Background(), `SELECT x, y, v FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	for i := 0; i < 100; i++ {
		if !r1.Next() {
			t.Fatalf("cursor 1 ended early at %d: %v", i, r1.Err())
		}
		if !r2.Next() {
			t.Fatalf("cursor 2 ended early at %d: %v", i, r2.Err())
		}
	}
}

// TestTxSnapshotSemantics drives the native transaction API: reads
// pinned at BEGIN, reads-own-writes, invisibility before commit,
// rollback, and SQL-level BEGIN/COMMIT statements.
func TestTxSnapshotSemantics(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY a (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
	c1, _ := db.Conn(context.Background())
	c2, _ := db.Conn(context.Background())
	defer c1.Close()
	defer c2.Close()

	sum := func(rs *Result) float64 {
		var s float64
		for r := 0; r < rs.NumRows(); r++ {
			s += rs.Get(r, 0).AsFloat()
		}
		return s
	}

	tx, err := c1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE a SET v = 1.0`); err != nil {
		t.Fatal(err)
	}
	// Reads-own-writes inside the tx.
	rs, err := tx.Query(`SELECT v FROM a`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(rs); got != 4 {
		t.Fatalf("tx read-own-writes sum = %v, want 4", got)
	}
	// Invisible to the other connection.
	rs, err = c2.Query(`SELECT v FROM a`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(rs); got != 0 {
		t.Fatalf("uncommitted write visible on c2: sum = %v", got)
	}
	// c2 commits a write to a DIFFERENT array concurrently; the open
	// tx still reads its pinned snapshot afterwards.
	if _, err := c2.Exec(`CREATE ARRAY other (x INTEGER DIMENSION[2], w FLOAT DEFAULT 5.0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Query(`SELECT w FROM other`); err == nil {
		t.Fatal("tx saw an array created after its snapshot was pinned")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rs, _ = c2.Query(`SELECT v FROM a`)
	if got := sum(rs); got != 4 {
		t.Fatalf("committed tx write lost: sum = %v", got)
	}

	// Rollback via SQL statements on the connection.
	if _, err := c1.Exec(`BEGIN; UPDATE a SET v = 9.0; ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	rs, _ = c1.Query(`SELECT v FROM a`)
	if got := sum(rs); got != 4 {
		t.Fatalf("SQL ROLLBACK leaked: sum = %v", got)
	}
	if c1.InTx() {
		t.Fatal("connection still in a transaction after ROLLBACK")
	}
}

// TestTxFirstCommitterWins: two native transactions update the same
// array; the second Commit fails with ErrTxConflict and its writes
// are discarded.
func TestTxFirstCommitterWins(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY a (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
	c1, _ := db.Conn(context.Background())
	c2, _ := db.Conn(context.Background())
	defer c1.Close()
	defer c2.Close()
	tx1, err := c1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := c2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Exec(`UPDATE a SET v = 1.0`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec(`UPDATE a SET v = 2.0`); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrTxConflict) {
		t.Fatalf("second committer error = %v, want ErrTxConflict", err)
	}
	rs := db.MustQuery(`SELECT v FROM a WHERE x = 0`)
	if got := rs.Get(0, 0).AsFloat(); got != 1 {
		t.Fatalf("surviving value = %v, want 1 (first committer)", got)
	}
}

// TestStaleStatementReResolves is the plan-cache invalidation bugfix:
// a statement prepared on one connection must re-resolve after
// another connection's DDL drops and retypes the array it scans,
// instead of executing stale bindings.
func TestStaleStatementReResolves(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY s (x INTEGER DIMENSION[4], v FLOAT DEFAULT 1.5)`)
	c1, _ := db.Conn(context.Background())
	c2, _ := db.Conn(context.Background())
	defer c1.Close()
	defer c2.Close()

	ps, err := c1.Prepare(`SELECT x, v FROM s WHERE v > 0`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	rs, err := ps.Query()
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 4 || rs.Cols[1].Typ.String() != "FLOAT" {
		t.Fatalf("pre-DDL: rows=%d type=%s", rs.NumRows(), rs.Cols[1].Typ)
	}

	// c2 drops and recreates s with an INTEGER v and different bounds.
	if _, err := c2.Exec(`DROP ARRAY s`); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec(`CREATE ARRAY s (x INTEGER DIMENSION[2], v INTEGER DEFAULT 7)`); err != nil {
		t.Fatal(err)
	}

	rs, err = ps.Query()
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 2 || rs.Cols[1].Typ.String() != "INTEGER" {
		t.Fatalf("post-DDL prepared statement did not re-resolve: rows=%d type=%s", rs.NumRows(), rs.Cols[1].Typ)
	}
	if got := rs.Get(0, 1).AsInt(); got != 7 {
		t.Fatalf("post-DDL value = %d, want 7", got)
	}

	// Dropping the array entirely turns execution into a clear error,
	// not a scan of stale bindings.
	if _, err := c2.Exec(`DROP ARRAY s`); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Query(); err == nil || !strings.Contains(err.Error(), "no such") {
		t.Fatalf("prepared statement against dropped array: err = %v, want no-such", err)
	}
}

// TestRowsColumnTypeNames pins the cursor's type metadata (the
// database/sql driver builds ColumnTypes on it).
func TestRowsColumnTypeNames(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY ty (x INTEGER DIMENSION[2], v FLOAT DEFAULT 0.5)`)
	rows, err := db.QueryContext(context.Background(), `SELECT x, v FROM ty`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	got := rows.ColumnTypeNames()
	want := []string{"INTEGER", "FLOAT"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ColumnTypeNames = %v, want %v", got, want)
	}
}

// TestConnClosedAndTxDone pins the lifecycle errors.
func TestConnClosedAndTxDone(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY lc (x INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0)`)
	c, _ := db.Conn(context.Background())
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("Commit after Rollback should fail")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`SELECT v FROM lc`); err == nil {
		t.Fatal("query on closed connection should fail")
	}
	// Close is idempotent, and Close rolls an open tx back.
	c2, _ := db.Conn(context.Background())
	if _, err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTxStatementAtomicity: a statement that fails mid-execution
// inside a transaction leaves no partial effects — earlier statements
// of the same transaction survive, and COMMIT publishes only them.
func TestTxStatementAtomicity(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY sa (x INTEGER DIMENSION[4], v FLOAT DEFAULT 1.0)`)
	c, _ := db.Conn(context.Background())
	defer c.Close()
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE sa SET v = 2.0`); err != nil {
		t.Fatal(err)
	}
	// CASE arms evaluate lazily: x=0,1 take the constant branch and
	// are written before x=2 hits the unknown function and errors.
	if _, err := tx.Exec(`UPDATE sa SET v = CASE WHEN x < 2 THEN 100.0 ELSE NOSUCHFN(v) END`); err == nil {
		t.Fatal("expected the partial UPDATE to fail")
	}
	// The failed statement rolled back entirely; the first statement's
	// effect is intact inside the transaction.
	rs, err := tx.Query(`SELECT v FROM sa`)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rs.NumRows(); r++ {
		if got := rs.Get(r, 0).AsFloat(); got != 2.0 {
			t.Fatalf("row %d inside tx = %v, want 2.0 (failed statement leaked)", r, got)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rs = db.MustQuery(`SELECT v FROM sa`)
	for r := 0; r < rs.NumRows(); r++ {
		if got := rs.Get(r, 0).AsFloat(); got != 2.0 {
			t.Fatalf("row %d after commit = %v, want 2.0", r, got)
		}
	}
}

// TestContextualTxKeywords: TRANSACTION and WORK are contextual, not
// reserved — columns may carry those names while BEGIN WORK / START
// TRANSACTION still parse.
func TestContextualTxKeywords(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY jobs (x INTEGER DIMENSION[2], work FLOAT DEFAULT 1.5, transaction FLOAT DEFAULT 2.5)`)
	rs := db.MustQuery(`SELECT work, transaction FROM jobs WHERE work > 0`)
	if rs.NumRows() != 2 || rs.Get(0, 1).AsFloat() != 2.5 {
		t.Fatalf("contextual-keyword columns broken: %v rows", rs.NumRows())
	}
	c, _ := db.Conn(context.Background())
	defer c.Close()
	if _, err := c.Exec(`BEGIN WORK; UPDATE jobs SET work = 9.0; COMMIT WORK`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`START TRANSACTION; UPDATE jobs SET transaction = 9.0; ROLLBACK WORK`); err != nil {
		t.Fatal(err)
	}
	rs = db.MustQuery(`SELECT work, transaction FROM jobs`)
	if rs.Get(0, 0).AsFloat() != 9.0 || rs.Get(0, 1).AsFloat() != 2.5 {
		t.Fatalf("tx forms misbehaved: work=%v transaction=%v", rs.Get(0, 0), rs.Get(0, 1))
	}
}
