package sciql

import (
	"math"
	"testing"
)

// TestPaperWalkthrough runs the paper's §3–§5 narrative end to end in
// one session: array definitions, guarded updates, coercions,
// slicing, transposed embedding, tiling, dimension reduction,
// coordinate systems and array composition.
func TestPaperWalkthrough(t *testing.T) {
	db := Open()

	// §3.1 — three equivalent declarations of float a[4].
	db.MustExec(`
		CREATE ARRAY A1 (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		CREATE ARRAY A2 (x INTEGER DIMENSION[0:4:1], v FLOAT DEFAULT 0.0);
		CREATE SEQUENCE range1 AS INTEGER START WITH 0 INCREMENT BY 1 MAXVALUE 3;
		CREATE ARRAY A3 (x INTEGER DIMENSION range1, v FLOAT DEFAULT 0.0);
	`)
	for _, name := range []string{"A1", "A2", "A3"} {
		rs := db.MustQuery(`SELECT count(*) FROM ` + name)
		if rs.Get(0, 0).I != 4 {
			t.Fatalf("%s has %d cells, want 4", name, rs.Get(0, 0).I)
		}
	}

	// §3.1 — the four forms, §3.2 — guarded updates.
	db.MustExec(`
		CREATE ARRAY matrix (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		CREATE ARRAY stripes (x INTEGER DIMENSION[4] CHECK(MOD(x,2) = 1), y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		CREATE ARRAY diagonal (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4] CHECK(x = y), v FLOAT DEFAULT 0.0);
		CREATE ARRAY sparse (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0 CHECK(v>0));
		UPDATE stripes SET v = CASE WHEN x>y THEN x + y WHEN x<y THEN x - y ELSE 0 END;
		UPDATE diagonal SET v = x + y;
		UPDATE matrix SET v = x * 4 + y;
	`)
	if got := db.MustQuery(`SELECT count(*) FROM stripes`).Get(0, 0).I; got != 8 {
		t.Fatalf("stripes cells = %d, want 8", got)
	}
	if got := db.MustQuery(`SELECT count(*) FROM diagonal`).Get(0, 0).I; got != 4 {
		t.Fatalf("diagonal cells = %d, want 4", got)
	}

	// §3.3 — coercions both ways.
	db.MustExec(`
		CREATE TABLE mtable (x INTEGER, y INTEGER, v FLOAT);
		INSERT INTO mtable SELECT x, y, v FROM matrix;
	`)
	if got := db.MustQuery(`SELECT count(*) FROM mtable`).Get(0, 0).I; got != 16 {
		t.Fatalf("coerced table rows = %d", got)
	}
	arr, err := db.QueryArray(`SELECT [x], [y], v FROM mtable`)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 16 {
		t.Fatalf("coerced array cells = %d", arr.Len())
	}

	// §4.1/§4.2 — cell selection and slicing.
	if got := db.MustQuery(`SELECT matrix[1][1].v`).Get(0, 0).AsFloat(); got != 5 {
		t.Fatalf("matrix[1][1].v = %v", got)
	}
	if got := db.MustQuery(`SELECT matrix[0:2][0:2].v`).NumRows(); got != 4 {
		t.Fatalf("2x2 slab = %d cells", got)
	}

	// §4.3 — transposed embedding into a bordered array.
	db.MustExec(`
		CREATE ARRAY vmatrix (x INTEGER DIMENSION[-1:5], y INTEGER DIMENSION[-1:5], w FLOAT DEFAULT 0);
		INSERT INTO vmatrix SELECT [y], [x], v FROM matrix;
	`)
	if got := db.MustQuery(`SELECT vmatrix[2][1].w`).Get(0, 0).AsFloat(); got != 6 {
		t.Fatalf("transposed cell = %v, want matrix[1][2] = 6", got)
	}
	if got := db.MustQuery(`SELECT vmatrix[-1][-1].w`).Get(0, 0).AsFloat(); got != 0 {
		t.Fatalf("border cell = %v, want 0", got)
	}

	// §4.4 — tiling with the zero-initialized enclosure.
	rs := db.MustQuery(`
		SELECT x, y, AVG(w) FROM vmatrix[0:4][0:4]
		GROUP BY vmatrix[x][y], vmatrix[x-1][y], vmatrix[x+1][y],
		         vmatrix[x][y-1], vmatrix[x][y+1]`)
	if rs.NumRows() != 16 {
		t.Fatalf("convolution anchors = %d", rs.NumRows())
	}

	// §5.2 — dimension reduction: 4x4 -> 2x2 by tile averaging.
	db.MustExec(`
		CREATE ARRAY tmp (x INTEGER DIMENSION, y INTEGER DIMENSION, v FLOAT);
		INSERT INTO tmp SELECT x, y, AVG(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2];
	`)
	if got := db.MustQuery(`SELECT count(*) FROM tmp`).Get(0, 0).I; got != 4 {
		t.Fatalf("reduced array cells = %d, want 4", got)
	}
	// Top-left tile of v = x*4+y: cells 0,1,4,5 -> avg 2.5.
	if got := db.MustQuery(`SELECT v FROM tmp WHERE x = 0 AND y = 0`).Get(0, 0).AsFloat(); got != 2.5 {
		t.Fatalf("reduced (0,0) = %v, want 2.5", got)
	}

	// §5.1 — coordinate systems: derived polar attributes. theta's
	// DEFAULT references r, so evaluation is ordered.
	db.MustExec(`ALTER ARRAY matrix ADD r FLOAT DEFAULT SQRT(POWER(x,2) + POWER(y,2))`)
	db.MustExec(`ALTER ARRAY matrix ADD theta FLOAT DEFAULT (CASE
		WHEN x > 0 AND y > 0 THEN 0
		WHEN x > 0 THEN ARCSIN(CAST(x AS FLOAT) / r)
		WHEN x < 0 THEN -ARCSIN(CAST(x AS FLOAT) / r) + PI()
		END)`)
	rv := db.MustQuery(`SELECT r FROM matrix WHERE x = 3 AND y = 0`).Get(0, 0).AsFloat()
	if rv != 3 {
		t.Fatalf("r(3,0) = %v", rv)
	}
	th := db.MustQuery(`SELECT theta FROM matrix WHERE x = 3 AND y = 0`).Get(0, 0).AsFloat()
	if math.Abs(th-math.Pi/2) > 1e-9 {
		t.Fatalf("theta(3,0) = %v, want pi/2", th)
	}

	// §5.3 — array composition: the chessboard.
	db.MustExec(`
		CREATE SEQUENCE rng AS INTEGER START WITH 0 INCREMENT BY 1 MAXVALUE 7;
		CREATE ARRAY white (i INTEGER DIMENSION rng, j INTEGER DIMENSION rng, color CHAR(5) DEFAULT 'white');
		CREATE ARRAY black (LIKE white);
		UPDATE black SET color = 'black';
		CREATE ARRAY chessboard (i INTEGER DIMENSION rng, j INTEGER DIMENSION rng, sq CHAR(5));
		INSERT INTO chessboard
			SELECT [i], [j], color FROM white WHERE MOD(i + j, 2) = 0
			UNION
			SELECT [i], [j], color FROM black WHERE MOD(i + j, 2) = 1;
	`)
	if got := db.MustQuery(`SELECT count(*) FROM chessboard`).Get(0, 0).I; got != 64 {
		t.Fatalf("chessboard cells = %d", got)
	}
	w := db.MustQuery(`SELECT count(*) FROM chessboard WHERE sq = 'white'`).Get(0, 0).I
	if w != 32 {
		t.Fatalf("white squares = %d, want 32", w)
	}
}

// TestPaperSection32Deletion reproduces §3.2's worked deletion example
// exactly: DELETE FROM matrix WHERE MOD(x,2)=0 OR MOD(y,2)=0 on the
// 4x4 matrix removes half the rows and columns, shifting survivors to
// x[0:1]y[0:1] and resetting the rest to the default.
func TestPaperSection32Deletion(t *testing.T) {
	db := Open()
	db.MustExec(`
		CREATE ARRAY matrix (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		UPDATE matrix SET v = x * 4 + y;
		DELETE FROM matrix WHERE MOD(x, 2) = 0 OR MOD(y, 2) = 0;
	`)
	want := map[[2]int64]float64{
		{0, 0}: 5, {0, 1}: 7, {1, 0}: 13, {1, 1}: 15,
		{2, 2}: 0, {3, 3}: 0, {0, 3}: 0,
	}
	for coords, w := range want {
		rs := db.MustQuery(`SELECT v FROM matrix WHERE x = ?x AND y = ?y`,
			Int("x", coords[0]), Int("y", coords[1]))
		if got := rs.Get(0, 0).AsFloat(); got != w {
			t.Errorf("matrix[%d][%d] = %v, want %v", coords[0], coords[1], got, w)
		}
	}
}
