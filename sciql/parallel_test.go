package sciql

import (
	"fmt"
	"testing"
)

// parallelQuerySet is the paper-walkthrough-shaped query set the
// morsel-driven executor must answer identically at any parallelism:
// bounded selects with pushdown, filters, projections, value grouping,
// overlapping and DISTINCT structural tiling, HAVING, ORDER BY and
// queries that fall back to the serial interpreter (joins, unions,
// correlated subqueries).
var parallelQuerySet = []string{
	`SELECT count(*) FROM matrix`,
	`SELECT x, y, v FROM matrix WHERE x = 1`,
	`SELECT v FROM matrix WHERE x >= 2 AND x < 6 AND v > 10 ORDER BY v`,
	`SELECT x, y, v + w AS s FROM matrix ORDER BY s DESC, x, y LIMIT 10`,
	`SELECT x, SUM(v), AVG(w), MIN(v), MAX(v), COUNT(*) FROM matrix GROUP BY x ORDER BY x`,
	`SELECT MOD(x, 3) AS k, SUM(v) FROM matrix GROUP BY MOD(x, 3) ORDER BY k`,
	`SELECT x, COUNT(*) FROM matrix WHERE v > 5 GROUP BY x HAVING COUNT(*) > 2 ORDER BY x`,
	`SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x-1:x+2][y-1:y+2]`,
	`SELECT [x], [y], AVG(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
	`SELECT [x], [y], SUM(v), COUNT(*) FROM matrix GROUP BY DISTINCT matrix[x:x+4][y:y+4]`,
	`SELECT [x], AVG(v) FROM matrix GROUP BY matrix[x][*]`,
	`SELECT [x], [y], AVG(v) FROM matrix WHERE x < 6 GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
	// Stepped FROM slices and pruned projections on the scan path.
	`SELECT x, y, v FROM matrix[0:8:3][*] ORDER BY x, y`,
	`SELECT x, w FROM matrix[1:8:2][0:8:4] ORDER BY x, y`,
	`SELECT x, v FROM matrix WHERE MOD(y, 2) = 0 ORDER BY x, y`,
	`SELECT count(*) FROM stripes`,
	`SELECT x, y, v FROM diagonal ORDER BY x`,
	`SELECT DISTINCT v FROM diagonal ORDER BY v`,
	// Fallback shapes: the engine must route these through the serial
	// interpreter and still honor the parallelism setting harmlessly.
	`SELECT a.x, a.v, b.v FROM matrix AS a JOIN diagonal AS b ON a.x = b.x AND a.y = b.y ORDER BY a.x`,
	`SELECT v FROM diagonal UNION SELECT v FROM diagonal ORDER BY v`,
	`SELECT x, v FROM matrix WHERE v > (SELECT AVG(v) FROM matrix) ORDER BY x, y`,
}

func setupParallelDB(t testing.TB) *DB {
	db := Open()
	db.MustExec(`
		CREATE ARRAY matrix (x INTEGER DIMENSION[8], y INTEGER DIMENSION[8], v FLOAT DEFAULT 0.0, w FLOAT DEFAULT 1.0);
		CREATE ARRAY stripes (x INTEGER DIMENSION[8] CHECK(MOD(x,2) = 1), y INTEGER DIMENSION[8], v FLOAT DEFAULT 0.0);
		CREATE ARRAY diagonal (x INTEGER DIMENSION[8], y INTEGER DIMENSION[8] CHECK(x = y), v FLOAT DEFAULT 0.0);
		UPDATE matrix SET v = x * 8 + y;
		UPDATE matrix SET w = x - y;
		UPDATE stripes SET v = x + y;
		UPDATE diagonal SET v = x * x;
	`)
	return db
}

// TestParallelMatchesSerial runs the query set at parallelism 1 and N
// and asserts byte-identical datasets (run under -race in CI, so this
// also vets the executor for data races).
func TestParallelMatchesSerial(t *testing.T) {
	db := setupParallelDB(t)
	for _, par := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			for _, q := range parallelQuerySet {
				db.Parallelism(1)
				serial, err := db.Query(q)
				if err != nil {
					t.Fatalf("serial %s: %v", q, err)
				}
				db.Parallelism(par)
				parallel, err := db.Query(q)
				if err != nil {
					t.Fatalf("parallel %s: %v", q, err)
				}
				if serial.String() != parallel.String() {
					t.Errorf("query %s differs at parallelism %d:\nserial:\n%s\nparallel:\n%s",
						q, par, serial.String(), parallel.String())
				}
			}
		})
	}
}

// TestParallelismKnob checks the knob's edge values.
func TestParallelismKnob(t *testing.T) {
	db := setupParallelDB(t)
	db.Parallelism(0) // GOMAXPROCS
	if _, err := db.Query(`SELECT count(*) FROM matrix`); err != nil {
		t.Fatal(err)
	}
	db.Parallelism(-3)
	if _, err := db.Query(`SELECT count(*) FROM matrix`); err != nil {
		t.Fatal(err)
	}
	db.Parallelism(1)
	if _, err := db.Query(`SELECT count(*) FROM matrix`); err != nil {
		t.Fatal(err)
	}
}
