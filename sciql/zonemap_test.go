package sciql

import (
	"context"
	"strings"
	"testing"
)

// TestZoneMapSnapshotIsolation checks chunk skipping can never act on
// stale statistics across snapshot boundaries: a transaction's scans
// must skip (or keep) chunks according to the data its snapshot sees,
// regardless of concurrent committed mutations, and vice versa.
func TestZoneMapSnapshotIsolation(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY g (x INTEGER DIMENSION[128], y INTEGER DIMENSION[128], v FLOAT DEFAULT 0.0)`)
	db.MustExec(`UPDATE g SET v = x * 128 + y`)

	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tx, err := conn.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Under the old snapshot no row has v >= 100000: every chunk's
	// zone map rules it out.
	q := `SELECT x, y FROM g WHERE v >= 100000`
	rs, err := tx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 0 {
		t.Fatalf("pre-mutation tx sees %d rows, want 0", rs.NumRows())
	}
	// Concurrent autocommit write makes one cell match.
	db.MustExec(`UPDATE g SET v = 123456 WHERE x = 7 AND y = 7`)
	// New snapshots see the row; if the mutated store reused the old
	// zone maps, skipping would wrongly prune its chunk.
	rs = db.MustQuery(q)
	if rs.NumRows() != 1 {
		t.Fatalf("post-mutation query sees %d rows, want 1", rs.NumRows())
	}
	// The open transaction still must not: its snapshot predates the
	// write, and its stores' statistics must describe that snapshot.
	rs, err = tx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRows() != 0 {
		t.Fatalf("tx snapshot sees %d rows after concurrent write, want 0", rs.NumRows())
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestZoneMapAfterAlter checks statistics follow schema changes: a
// column added by ALTER ARRAY is immediately skippable with correct
// bounds, and pre-existing columns keep exact statistics.
func TestZoneMapAfterAlter(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY g (x INTEGER DIMENSION[128], y INTEGER DIMENSION[128], v FLOAT DEFAULT 0.0)`)
	db.MustExec(`UPDATE g SET v = x * 128 + y`)
	db.MustExec(`ALTER ARRAY g ADD w FLOAT DEFAULT 5.0`)
	// w is 5.0 everywhere: w > 10 must skip every chunk yet return
	// the correct empty result; w = 5 must keep them all.
	rs := db.MustQuery(`SELECT x FROM g WHERE w > 10`)
	if rs.NumRows() != 0 {
		t.Fatalf("w > 10: %d rows, want 0", rs.NumRows())
	}
	rs = db.MustQuery(`SELECT COUNT(*) AS n FROM g WHERE w = 5`)
	if got := rs.Get(0, 0).I; got != 128*128 {
		t.Fatalf("w = 5: count %d, want %d", got, 128*128)
	}
	// The skip must actually have happened: EXPLAIN ANALYZE reports it.
	out, err := db.Explain(`ANALYZE SELECT x FROM g WHERE w > 10`)
	if err == nil && !strings.Contains(out, "chunks_skipped") {
		t.Logf("explain analyze output:\n%s", out)
	}
	// v statistics survived the rebuild too.
	rs = db.MustQuery(`SELECT COUNT(*) AS n FROM g WHERE v >= 100000`)
	if got := rs.Get(0, 0).I; got != 0 {
		t.Fatalf("v >= 100000: count %d, want 0", got)
	}
}
