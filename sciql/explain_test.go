package sciql

import (
	"strings"
	"testing"
)

func explainDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		CREATE ARRAY matrix (x INTEGER DIMENSION[8], y INTEGER DIMENSION[8], v FLOAT DEFAULT 0.0, w FLOAT DEFAULT 1.0);
		UPDATE matrix SET v = x * 8 + y;
	`)
	return db
}

func assertExplain(t *testing.T, db *DB, sql, want string) {
	t.Helper()
	got, err := db.Explain(sql)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sql, err)
	}
	want = strings.TrimLeft(want, "\n")
	if got != want {
		t.Errorf("EXPLAIN %s:\ngot:\n%s\nwant:\n%s", sql, got, want)
	}
}

// TestExplainBoundedSelect is the paper's bounded array select: the
// dimension predicates leave the WHERE clause and become point/slice
// restrictions on the scan, the unused attribute w is pruned, and the
// filter and projection are marked as compiling into bulk kernels.
func TestExplainBoundedSelect(t *testing.T) {
	db := explainDB(t)
	assertExplain(t, db,
		`SELECT v FROM matrix WHERE x = 1 AND y >= 1 AND y < 3 AND v > 1 + 1`,
		`
Project v (est_rows=2 cost=68) [vectorized]
  Filter (v > 2) (est_rows=2 cost=66) [vectorized]
    Scan matrix dims[x=1 (pushed), y=[1:3) (pushed)] attrs[v] (est_rows=2 cost=64)
execution: parallelizable (morsel-driven)
`)
}

// TestExplainVectorizedAnnotation checks the per-operator vectorized
// annotation: kernel-compilable filters/projections/aggregations are
// tagged, unsupported expressions (CASE) are not, and turning the knob
// off drops every tag.
func TestExplainVectorizedAnnotation(t *testing.T) {
	db := explainDB(t)
	assertExplain(t, db,
		`SELECT MOD(x, 3) AS k, AVG(v) FROM matrix WHERE v > 1 GROUP BY MOD(x, 3)`,
		`
Project MOD(x, 3) AS k, AVG(v) (est_rows=6 cost=197)
  Aggregate keys[MOD(x, 3)] aggs[AVG(v)] (est_rows=6 cost=191) [vectorized]
    Filter (v > 1) (est_rows=63 cost=128) [vectorized]
      Scan matrix attrs[v] (est_rows=64 cost=64)
execution: parallelizable (morsel-driven)
`)
	// CASE is outside the kernel surface: the projection loses its tag
	// (it falls back to the row interpreter), the filter keeps its own.
	assertExplain(t, db,
		`SELECT CASE WHEN v > 2 THEN 1 ELSE 0 END AS c FROM matrix WHERE v > 1`,
		`
Project CASE WHEN (v > 2) THEN 1 ELSE 0 END AS c (est_rows=63 cost=191)
  Filter (v > 1) (est_rows=63 cost=128) [vectorized]
    Scan matrix attrs[v] (est_rows=64 cost=64)
execution: parallelizable (morsel-driven)
`)
	db.Vectorize(false)
	assertExplain(t, db,
		`SELECT v FROM matrix WHERE v > 1`,
		`
Project v (est_rows=63 cost=191)
  Filter (v > 1) (est_rows=63 cost=128)
    Scan matrix attrs[v] (est_rows=64 cost=64)
execution: parallelizable (morsel-driven)
`)
}

// TestExplainTiledAggregation is the paper's §4.4 structural grouping.
func TestExplainTiledAggregation(t *testing.T) {
	db := explainDB(t)
	assertExplain(t, db,
		`SELECT [x], [y], AVG(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
		`
Project [x], [y], AVG(v) (est_rows=64 cost=384)
  TiledAggregate matrix distinct tiles[matrix[x:(x + 2)][y:(y + 2)]] aggs[AVG(v)] (est_rows=64 cost=320)
    Scan matrix attrs[v] (est_rows=64 cost=64)
execution: parallelizable (morsel-driven)
`)
}

// TestExplainStatement checks the EXPLAIN keyword works through Exec
// and returns one row per plan line.
func TestExplainStatement(t *testing.T) {
	db := explainDB(t)
	rs, err := db.Exec(`EXPLAIN SELECT v FROM matrix WHERE x = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumCols() != 1 || rs.Cols[0].Name != "plan" {
		t.Fatalf("unexpected EXPLAIN shape: %v", rs.Cols)
	}
	if rs.NumRows() < 3 {
		t.Fatalf("EXPLAIN returned %d rows, want >= 3", rs.NumRows())
	}
	if got := rs.Get(1, 0).S; !strings.Contains(got, "x=3 (pushed)") {
		t.Fatalf("scan line %q missing pushed point restriction", got)
	}
}

// TestExplainFallbackReason checks non-parallelizable shapes say why.
func TestExplainFallbackReason(t *testing.T) {
	db := explainDB(t)
	out, err := db.Explain(`SELECT a.v FROM matrix AS a, matrix AS b`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "execution: serial interpreter (cross join)") {
		t.Fatalf("missing fallback reason:\n%s", out)
	}
	// A thread-unsafe expression also forces the interpreter.
	out, err = db.Explain(`SELECT v FROM matrix WHERE v > (SELECT AVG(v) FROM matrix)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "execution: serial interpreter (expression needs engine state)") {
		t.Fatalf("missing expression gate:\n%s", out)
	}
}

// TestExplainJoinCost checks the cost-based annotations on joins: the
// estimated cardinalities pick the build side (smaller input builds
// the hash table), and the choice flips with the input order.
func TestExplainJoinCost(t *testing.T) {
	db := explainDB(t)
	db.MustExec(`CREATE ARRAY small (t INTEGER DIMENSION[4], s FLOAT DEFAULT 2.0)`)
	assertExplain(t, db,
		`SELECT m.v, s.s FROM matrix AS m JOIN small AS s ON m.x = s.t WHERE m.v < 16`,
		`
Project m.v, s.s (est_rows=17 cost=217)
  Filter (m.v < 16) (est_rows=17 cost=200)
    Join INNER on (m.x = s.t) (est_rows=64 cost=136 build=right)
      Scan matrix AS m attrs[v] (est_rows=64 cost=64)
      Scan small AS s (est_rows=4 cost=4)
execution: parallelizable (morsel-driven)
`)
	assertExplain(t, db,
		`SELECT s.s, m.v FROM small AS s JOIN matrix AS m ON s.t = m.x`,
		`
Project s.s, m.v (est_rows=64 cost=200)
  Join INNER on (s.t = m.x) (est_rows=64 cost=136 build=left)
    Scan small AS s (est_rows=4 cost=4)
    Scan matrix AS m attrs[v] (est_rows=64 cost=64)
execution: parallelizable (morsel-driven)
`)
}
