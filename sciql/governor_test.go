package sciql

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// setupGovernorDB builds an array big enough that scans do real work
// (chunked loops, measurable memory) without slowing the suite down.
func setupGovernorDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		CREATE ARRAY gmatrix (x INTEGER DIMENSION[128], y INTEGER DIMENSION[128], v FLOAT DEFAULT 0.0);
		UPDATE gmatrix SET v = x * 131 + y;
	`)
	return db
}

const govQuery = `SELECT x, y, v FROM gmatrix WHERE v > 100`

func TestMemoryBudgetAbort(t *testing.T) {
	db := setupGovernorDB(t)
	want := db.MustQuery(govQuery)

	// A 1 KiB per-query budget cannot hold a 16K-cell result.
	db.SetMemoryLimit(1<<10, 0)
	if _, err := db.Query(govQuery); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("per-query limit: err = %v, want ErrMemoryBudget", err)
	}
	if got := db.Metrics()["mem_budget_aborts_total"]; got < 1 {
		t.Errorf("mem_budget_aborts_total = %d, want >= 1", got)
	}
	if got := pinned(db); got != 0 {
		t.Errorf("after budget abort: snapshots_pinned = %d, want 0", got)
	}
	if got := db.Metrics()["mem_in_use_bytes"]; got != 0 {
		t.Errorf("after budget abort: mem_in_use_bytes = %d, want 0", got)
	}

	// The total (cross-query) limit trips the same way.
	db.SetMemoryLimit(0, 1<<10)
	if _, err := db.Query(govQuery); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("total limit: err = %v, want ErrMemoryBudget", err)
	}

	// Disarming restores normal execution with identical results.
	db.SetMemoryLimit(0, 0)
	got, err := db.Query(govQuery)
	if err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	if got.String() != want.String() {
		t.Error("result after budget abort differs from baseline")
	}
}

func TestMemoryBudgetGenerousLimitPasses(t *testing.T) {
	db := setupGovernorDB(t)
	want := db.MustQuery(govQuery)
	// A generous limit must not change results: accounting is armed
	// (mem_in_use_bytes moves) but nothing aborts.
	db.SetMemoryLimit(1<<30, 1<<30)
	for _, vec := range []bool{true, false} {
		db.Vectorize(vec)
		got, err := db.Query(govQuery)
		if err != nil {
			t.Fatalf("vec=%v: %v", vec, err)
		}
		if got.String() != want.String() {
			t.Errorf("vec=%v: governed result differs from baseline", vec)
		}
	}
	if got := db.Metrics()["mem_in_use_bytes"]; got != 0 {
		t.Errorf("idle mem_in_use_bytes = %d, want 0", got)
	}
}

func TestStatementTimeout(t *testing.T) {
	db := setupGovernorDB(t)
	db.SetStatementTimeout(time.Nanosecond)
	if _, err := db.Query(govQuery); !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("err = %v, want ErrStatementTimeout", err)
	}
	if got := db.Metrics()["queries_timed_out_total"]; got < 1 {
		t.Errorf("queries_timed_out_total = %d, want >= 1", got)
	}
	if got := pinned(db); got != 0 {
		t.Errorf("after timeout: snapshots_pinned = %d, want 0", got)
	}

	// Disarming restores normal execution.
	db.SetStatementTimeout(0)
	if _, err := db.Query(govQuery); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestStatementTimeoutCoversCursorLifetime(t *testing.T) {
	db := setupGovernorDB(t)
	db.SetStatementTimeout(30 * time.Millisecond)
	rows, err := db.QueryContext(context.Background(), govQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	rows.Next()
	// A client sitting on an open cursor past the deadline gets the
	// timeout on its next pull.
	time.Sleep(120 * time.Millisecond)
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("cursor err = %v, want ErrStatementTimeout", err)
	}
	rows.Close()
	if got := pinned(db); got != 0 {
		t.Errorf("after cursor timeout: snapshots_pinned = %d, want 0", got)
	}
}

func TestCallerCancelIsNotStatementTimeout(t *testing.T) {
	db := setupGovernorDB(t)
	// Generous statement timeout armed: caller cancellation must still
	// surface as context.Canceled, never ErrStatementTimeout.
	db.SetStatementTimeout(time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, govQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	cancel()
	for rows.Next() {
	}
	err = rows.Err()
	rows.Close()
	if err == nil {
		t.Fatal("expected an error after caller cancellation")
	}
	if errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("caller cancellation surfaced as ErrStatementTimeout: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	db := setupGovernorDB(t)
	db.SetMaxConcurrentQueries(1)
	db.SetAdmissionQueue(0, 0) // no queue: reject immediately

	// An open cursor holds the single slot until Close.
	rows, err := db.QueryContext(context.Background(), govQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if _, err := db.Query(govQuery); !errors.Is(err, ErrAdmission) {
		t.Fatalf("second query: err = %v, want ErrAdmission", err)
	}
	m := db.Metrics()
	if m["queries_admitted_total"] < 1 {
		t.Errorf("queries_admitted_total = %d, want >= 1", m["queries_admitted_total"])
	}
	if m["queries_rejected_total"] < 1 {
		t.Errorf("queries_rejected_total = %d, want >= 1", m["queries_rejected_total"])
	}
	rows.Close()
	if _, err := db.Query(govQuery); err != nil {
		t.Fatalf("after Close: %v", err)
	}

	// With a wait queue, a blocked statement is admitted when the slot
	// frees instead of being rejected.
	db.SetAdmissionQueue(4, 2*time.Second)
	rows, err = db.QueryContext(context.Background(), govQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	done := make(chan error, 1)
	go func() {
		_, err := db.Query(govQuery)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the second query queue
	rows.Close()
	if err := <-done; err != nil {
		t.Fatalf("queued query: %v", err)
	}
}

func TestAdmissionSlotFreedByAbandonedCursorTeardown(t *testing.T) {
	db := setupGovernorDB(t)
	db.SetMaxConcurrentQueries(1)
	db.SetAdmissionQueue(0, 0)
	rows, err := db.QueryContext(context.Background(), govQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	// Abandon the cursor without Close; DB.Close drains the cursor
	// ledgers, which must free the admission slot too.
	_ = rows
	db.Close()
	if _, err := db.Query(govQuery); err != nil {
		t.Fatalf("after teardown of abandoned cursor: %v", err)
	}
	if got := pinned(db); got != 0 {
		t.Errorf("snapshots_pinned = %d, want 0", got)
	}
}

func TestDrain(t *testing.T) {
	db := setupGovernorDB(t)
	db.SetMaxConcurrentQueries(2)

	// Drain with an in-flight cursor and an expired context times out.
	rows, err := db.QueryContext(context.Background(), govQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	if err := db.Drain(ctx); err == nil {
		t.Error("Drain with an open cursor returned before the cursor closed")
	}
	cancel()

	// Once the cursor closes, Drain completes, and the database stays
	// in shutdown mode: new statements bounce with ErrAdmission.
	rows.Close()
	if err := db.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after close: %v", err)
	}
	if _, err := db.Query(govQuery); !errors.Is(err, ErrAdmission) {
		t.Fatalf("query after Drain: err = %v, want ErrAdmission", err)
	}
}

func TestPanicContainment(t *testing.T) {
	db := setupGovernorDB(t)
	db.RegisterExternal("boom", func(args []Value) (Value, error) {
		panic("kaboom in external function")
	})
	db.MustExec(`CREATE FUNCTION boom (v FLOAT) RETURNS FLOAT EXTERNAL NAME 'boom'`)

	const q = `SELECT boom(v) FROM gmatrix`
	_, err := db.Query(q)
	if err == nil {
		t.Fatal("panicking query returned no error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if !strings.Contains(pe.Query, "boom") {
		t.Errorf("PanicError.Query = %q, want the statement text", pe.Query)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack trace")
	}
	if got := db.Metrics()["queries_panicked_total"]; got < 1 {
		t.Errorf("queries_panicked_total = %d, want >= 1", got)
	}
	if got := pinned(db); got != 0 {
		t.Errorf("after contained panic: snapshots_pinned = %d, want 0", got)
	}

	// The database is fully usable afterwards: same session model, new
	// statements, even the same crashing statement again.
	if rs := db.MustQuery(govQuery); rs.NumRows() == 0 {
		t.Error("healthy query after panic returned no rows")
	}
	if _, err := db.Query(q); err == nil {
		t.Error("second panicking query returned no error")
	}

	// An explicit connection survives a contained panic too.
	c, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.QueryContext(context.Background(), q); err == nil {
		t.Error("conn: panicking query returned no error")
	}
	rows, err := c.QueryContext(context.Background(), govQuery)
	if err != nil {
		t.Fatalf("conn after panic: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("conn after panic: %v", err)
	}
	rows.Close()
	if n == 0 {
		t.Error("conn after panic: no rows")
	}
}
