package sciql

import (
	"context"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sql/ast"
)

// ErrTxConflict is returned by Tx.Commit (and COMMIT statements) when
// another transaction committed a conflicting version of an object
// this one wrote: first committer wins. Retry the transaction.
var ErrTxConflict = catalog.ErrConflict

// Conn is one session of the database: private prepared-statement and
// snapshot/transaction state over the shared, versioned catalog.
//
// Connections run statements truly concurrently with each other —
// there is no shared statement mutex. Each statement (and each open
// Rows cursor) pins one immutable catalog snapshot; writers build new
// object versions copy-on-write and publish them atomically, so a
// reader never blocks on a writer and never observes a half-applied
// statement. A single Conn is not safe for concurrent use (like a
// database/sql driver connection): run one statement at a time, and
// treat an open Rows as in-flight.
type Conn struct {
	db     *DB
	eng    *exec.Engine
	closed bool
}

// Conn opens a new connection. The context covers connection setup
// only (kept for database/sql symmetry; nil is tolerated like the
// other entry points); connections are cheap, in-process session
// states.
func (db *DB) Conn(ctx context.Context) (*Conn, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return &Conn{db: db, eng: db.engine.NewSession()}, nil
}

// Close releases the connection, rolling back any open transaction
// and freeing the catalog snapshots of any Rows cursors abandoned
// without Close (so a dropped connection cannot retain superseded
// object versions). The connection is unusable afterwards; closing
// twice is a no-op.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.eng.ReleaseCursorPins()
	if c.eng.InTx() {
		return c.eng.Rollback()
	}
	return nil
}

func (c *Conn) check() error {
	if c.closed {
		return fmt.Errorf("sciql: connection is closed")
	}
	return nil
}

// Exec runs one or more semicolon-separated statements on this
// connection, returning the result of the last one (nil for DDL/DML).
func (c *Conn) Exec(sql string, args ...Arg) (*Result, error) {
	return c.ExecContext(context.Background(), sql, args...)
}

// ExecContext is Exec bound to a context: cancellation stops long
// scans and the call returns ctx.Err().
func (c *Conn) ExecContext(ctx context.Context, sql string, args ...Arg) (*Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	stmts, err := c.db.compile(sql)
	if err != nil {
		return nil, err
	}
	return c.db.execTraced(ctx, c.eng, sql, stmts, args)
}

// Query runs a single SELECT on this connection, materialized.
func (c *Conn) Query(sql string, args ...Arg) (*Result, error) {
	rows, err := c.QueryContext(context.Background(), sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.materialize()
}

// QueryContext runs a single SELECT as a streaming cursor against the
// snapshot pinned when the query starts: concurrent commits (from
// other connections) do not affect the rows this cursor returns.
// Always Close the returned Rows.
func (c *Conn) QueryContext(ctx context.Context, sql string, args ...Arg) (*Rows, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	sel, err := c.db.compileSelect(sql)
	if err != nil {
		return nil, err
	}
	return c.db.queryTraced(ctx, c.eng, sql, sel, args)
}

// Prepare parses sql once and returns a statement handle bound to
// this connection; re-executions skip parsing, and the engine's
// version-stamped plan cache re-resolves automatically after DDL from
// any connection instead of executing stale bindings.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	stmts, err := c.db.compile(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: c.db, conn: c, text: sql, stmts: stmts}, nil
}

// Begin starts a snapshot-isolated transaction on this connection:
// reads see the catalog exactly as of Begin (plus the transaction's
// own writes); writes accumulate in a private version published
// atomically by Commit. Concurrent transactions writing the same
// object resolve first-committer-wins: the later Commit returns
// ErrTxConflict.
func (c *Conn) Begin() (*Tx, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	if err := c.eng.Begin(); err != nil {
		return nil, err
	}
	return &Tx{c: c}, nil
}

// InTx reports whether the connection has an open transaction (also
// reachable through BEGIN/COMMIT/ROLLBACK statements via Exec).
func (c *Conn) InTx() bool { return c.eng.InTx() }

// Tx is an open transaction on a Conn. Statements may equivalently
// run through the Tx or through the owning Conn — a transaction is
// connection state, as in SQL.
type Tx struct {
	c    *Conn
	done bool
}

func (t *Tx) check() error {
	if t.done {
		return fmt.Errorf("sciql: transaction has already been committed or rolled back")
	}
	return t.c.check()
}

// Exec runs statements inside the transaction.
func (t *Tx) Exec(sql string, args ...Arg) (*Result, error) {
	return t.ExecContext(context.Background(), sql, args...)
}

// ExecContext is Exec bound to a context.
func (t *Tx) ExecContext(ctx context.Context, sql string, args ...Arg) (*Result, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	return t.c.ExecContext(ctx, sql, args...)
}

// Query runs a SELECT inside the transaction, materialized.
func (t *Tx) Query(sql string, args ...Arg) (*Result, error) {
	rows, err := t.QueryContext(context.Background(), sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.materialize()
}

// QueryContext runs a SELECT inside the transaction as a streaming
// cursor: rows come from the transaction's snapshot plus its own
// uncommitted writes.
func (t *Tx) QueryContext(ctx context.Context, sql string, args ...Arg) (*Rows, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	return t.c.QueryContext(ctx, sql, args...)
}

// Commit publishes the transaction's writes as one new catalog
// version. Returns ErrTxConflict if a concurrent transaction
// committed a conflicting object version first; the transaction is
// over either way.
func (t *Tx) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	return t.c.eng.Commit()
}

// Rollback discards the transaction's writes.
func (t *Tx) Rollback() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	return t.c.eng.Rollback()
}

// execAll runs parsed statements sequentially on one session.
func execAll(ctx context.Context, eng *exec.Engine, stmts []ast.Statement, args []Arg) (*Result, error) {
	params := collectArgs(args)
	var last *Result
	for _, s := range stmts {
		ds, err := eng.ExecContext(ctx, s, params)
		if err != nil {
			return nil, err
		}
		last = ds
	}
	return last, nil
}
