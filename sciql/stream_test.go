package sciql

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// walkthroughDB builds the paper-walkthrough schema the §3–§5 suite
// queries against.
func walkthroughDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		CREATE ARRAY matrix (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		CREATE ARRAY stripes (x INTEGER DIMENSION[4] CHECK(MOD(x,2) = 1), y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0);
		CREATE ARRAY diagonal (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4] CHECK(x = y), v FLOAT DEFAULT 0.0);
		CREATE ARRAY vmatrix (x INTEGER DIMENSION[-1:5], y INTEGER DIMENSION[-1:5], w FLOAT DEFAULT 0);
		UPDATE stripes SET v = CASE WHEN x>y THEN x + y WHEN x<y THEN x - y ELSE 0 END;
		UPDATE diagonal SET v = x + y;
		UPDATE matrix SET v = x * 4 + y;
		INSERT INTO vmatrix SELECT [y], [x], v FROM matrix;
		CREATE TABLE mtable (x INTEGER, y INTEGER, v FLOAT);
		INSERT INTO mtable SELECT x, y, v FROM matrix;
	`)
	return db
}

// walkthroughQueries is the paper-walkthrough query suite: both
// stream-eligible shapes (scan/filter/project/limit) and fallback
// shapes (aggregation, tiling, ORDER BY, DISTINCT, joins, UNION).
var walkthroughQueries = []string{
	`SELECT x, y, v FROM matrix`,
	`SELECT * FROM matrix`,
	`SELECT x, y, v FROM matrix WHERE v > 5`,
	`SELECT x, y, v FROM matrix WHERE x = 2`,
	`SELECT x, y, v FROM matrix WHERE x >= 1 AND x < 3 AND v > 4`,
	`SELECT x + y AS s, v * 2 FROM matrix WHERE MOD(x, 2) = 0`,
	`SELECT x, y, v FROM matrix WHERE v > ?lo`,
	`SELECT x, v FROM matrix LIMIT 5`,
	`SELECT x, v FROM matrix LIMIT 0`,
	`SELECT matrix.v FROM matrix WHERE matrix.x = 1`,
	`SELECT x, y, v FROM matrix WHERE x = 1 AND x = 2`,
	`SELECT x, y, v FROM matrix[0:4:2][*]`,
	`SELECT x, y FROM matrix[1:4:2][0:4:3]`,
	`SELECT x, w FROM vmatrix[-1:5:3][*] WHERE w > 0`,
	`SELECT count(*) FROM stripes`,
	`SELECT x, AVG(v) FROM matrix GROUP BY x`,
	`SELECT [x], [y], AVG(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`,
	`SELECT x, y, AVG(w) FROM vmatrix[0:4][0:4]
	   GROUP BY vmatrix[x][y], vmatrix[x-1][y], vmatrix[x+1][y], vmatrix[x][y-1], vmatrix[x][y+1]`,
	`SELECT x, y, v FROM matrix ORDER BY v DESC LIMIT 3`,
	`SELECT DISTINCT v FROM diagonal`,
	`SELECT m.x, m.v, t.v FROM matrix m JOIN mtable t ON m.x = t.x AND m.y = t.y WHERE m.x < 2`,
	`SELECT x FROM matrix WHERE v > 13 UNION SELECT x FROM matrix WHERE v < 2`,
	`SELECT x, y, v FROM matrix WHERE v > (SELECT AVG(v) FROM matrix)`,
}

var walkthroughArgs = []Arg{Float("lo", 6.5)}

// TestRowsMatchMaterialized checks the satellite identity property:
// Rows iteration produces byte-identical results to the materialized
// interpreter across the walkthrough suite, serially and in parallel.
func TestRowsMatchMaterialized(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			db := walkthroughDB(t)
			db.Parallelism(par)
			for _, q := range walkthroughQueries {
				// Materialized interpreter (no cursor involved).
				mat, err := db.Exec(q, walkthroughArgs...)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				// Streaming cursor, drained by hand.
				rows, err := db.QueryContext(context.Background(), q, walkthroughArgs...)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				var got []string
				for rows.Next() {
					parts := make([]string, 0, len(rows.Values()))
					for _, v := range rows.Values() {
						parts = append(parts, v.String())
					}
					got = append(got, strings.Join(parts, "|"))
				}
				if err := rows.Err(); err != nil {
					t.Fatalf("%s: rows.Err: %v", q, err)
				}
				rows.Close()
				var want []string
				for r := 0; r < mat.NumRows(); r++ {
					parts := make([]string, 0, mat.NumCols())
					for c := 0; c < mat.NumCols(); c++ {
						parts = append(parts, mat.Get(r, c).String())
					}
					want = append(want, strings.Join(parts, "|"))
				}
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("%s:\nrows:\n%s\nmaterialized:\n%s", q, strings.Join(got, "\n"), strings.Join(want, "\n"))
				}
				// The materialized Query view must render identically too.
				rs, err := db.Query(q, walkthroughArgs...)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if rs.String() != mat.String() {
					t.Fatalf("%s: Query view differs from interpreter:\n%s\nvs\n%s", q, rs.String(), mat.String())
				}
			}
		})
	}
}

// TestStreamingIsIncremental pins that eligible queries really stream:
// the first row arrives from an open cursor, not a completed dataset.
func TestStreamingIsIncremental(t *testing.T) {
	db := walkthroughDB(t)
	rows, err := db.QueryContext(context.Background(), `SELECT x, y, v FROM matrix WHERE v > 1`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.cur.Streaming() {
		t.Fatal("scan/filter/project query did not take the streaming path")
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	// Aggregations fall back to the materialized path, same interface.
	agg, err := db.QueryContext(context.Background(), `SELECT AVG(v) FROM matrix`)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	if agg.cur.Streaming() {
		t.Fatal("aggregate query unexpectedly claims to stream")
	}
}

// bigDB builds a database large enough that queries take measurable
// time, for cancellation tests.
func bigDB(t testing.TB, n int) *DB {
	t.Helper()
	db := Open()
	db.MustExec(fmt.Sprintf(
		`CREATE ARRAY big (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n))
	db.MustExec(`UPDATE big SET v = x * 31 + y`)
	return db
}

// TestCancelParallelQuery cancels a long parallel aggregation
// mid-flight: the call must return ctx.Err() promptly and leak no
// goroutines (the race detector guards the shutdown path).
func TestCancelParallelQuery(t *testing.T) {
	db := bigDB(t, 256)
	db.Parallelism(4)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := db.ExecContext(ctx,
				`SELECT MOD(x*31+y, 101), AVG(SQRT(v) * SQRT(v+1) + POWER(v, 0.3)) FROM big GROUP BY MOD(x*31+y, 101)`)
			done <- err
		}()
		time.Sleep(2 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			// The race between cancel and completion may let a fast run
			// finish; what must never happen is a different error or a
			// hang past the deadline below.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled (or completion), got %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("canceled query did not return within 10s")
		}
	}
	waitForGoroutines(t, before)
}

// TestCancelStreamingQuery cancels an open streaming cursor (parallel
// morsel stream): Next must surface ctx.Err() and the workers must
// wind down.
func TestCancelStreamingQuery(t *testing.T) {
	db := bigDB(t, 200)
	db.Parallelism(4)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, `SELECT x, y, SQRT(v) FROM big WHERE MOD(x+y, 3) = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() { //nolint:revive // drain until cancellation surfaces
	}
	if err := rows.Err(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled (or drained), got %v", err)
	}
	rows.Close()
	waitForGoroutines(t, before)
}

// TestCloseStopsStream closes a cursor mid-iteration; the producing
// workers must wind down without draining the query.
func TestCloseStopsStream(t *testing.T) {
	db := bigDB(t, 200)
	db.Parallelism(4)
	before := runtime.NumGoroutine()
	rows, err := db.QueryContext(context.Background(), `SELECT x, y, v FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	rows.Close()
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count settles back to
// (roughly) the baseline, failing the test on a leak.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
}

// TestPreparedStatements covers Prepare/Stmt: plan once, bind many.
func TestPreparedStatements(t *testing.T) {
	db := walkthroughDB(t)
	st, err := db.Prepare(`SELECT v FROM matrix WHERE x = ?x AND y = ?y`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for x := int64(0); x < 4; x++ {
		rs, err := st.Query(Int("x", x), Int("y", x))
		if err != nil {
			t.Fatal(err)
		}
		if got := rs.Get(0, 0).AsFloat(); got != float64(x*4+x) {
			t.Fatalf("v(%d,%d) = %v, want %v", x, x, got, x*4+x)
		}
	}
	// Non-SELECT through a prepared statement.
	up, err := db.Prepare(`UPDATE matrix SET v = v + ?d WHERE x = 0 AND y = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.Exec(Float("d", 100)); err != nil {
		t.Fatal(err)
	}
	if got := db.MustQuery(`SELECT v FROM matrix WHERE x = 0 AND y = 0`).Get(0, 0).AsFloat(); got != 100 {
		t.Fatalf("after prepared UPDATE, v = %v", got)
	}
	// Query on a DDL statement must be rejected.
	if _, err := st.ExecContext(context.Background(), Int("x", 0), Int("y", 0)); err != nil {
		t.Fatalf("Exec on a SELECT stmt should work: %v", err)
	}
	bad, err := db.Prepare(`CREATE ARRAY nope (x INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Query(); err == nil {
		t.Fatal("Query on a DDL statement should error")
	}
}

// TestPlanCacheReusesAST pins the ad-hoc plan cache: identical text
// hits the LRU and reuses the parsed statement, so the engine's
// per-node plan memoization applies across calls.
func TestPlanCacheReusesAST(t *testing.T) {
	db := walkthroughDB(t)
	q := `SELECT v FROM matrix WHERE x = ?x`
	first, err := db.compile(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := db.compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != second[0] {
		t.Fatal("identical text did not reuse the cached AST")
	}
	db.SetPlanCacheSize(0) // disable
	third, err := db.compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if third[0] == first[0] {
		t.Fatal("disabled cache still returned the cached AST")
	}
	// LRU eviction: capacity 2, three distinct texts.
	db.SetPlanCacheSize(2)
	a, _ := db.compile(`SELECT v FROM matrix WHERE x = 0`)
	db.MustQuery(`SELECT v FROM matrix WHERE x = 1`)
	db.MustQuery(`SELECT v FROM matrix WHERE x = 2`)
	a2, _ := db.compile(`SELECT v FROM matrix WHERE x = 0`)
	if a[0] == a2[0] {
		t.Fatal("expected eviction of the oldest entry at capacity 2")
	}
}

// TestExplainDirectCompile covers the fixed Explain: leading comments
// work, EXPLAIN prefixes are accepted, and multi-statement input is
// rejected instead of executed.
func TestExplainDirectCompile(t *testing.T) {
	db := walkthroughDB(t)
	plan, err := db.Explain(`SELECT x, v FROM matrix WHERE x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Scan matrix") || !strings.Contains(plan, "x=1 (pushed)") {
		t.Fatalf("unexpected plan:\n%s", plan)
	}
	viaPrefix, err := db.Explain(`EXPLAIN SELECT x, v FROM matrix WHERE x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if viaPrefix != plan {
		t.Fatalf("EXPLAIN-prefixed text rendered differently:\n%s\nvs\n%s", viaPrefix, plan)
	}
	// Multi-statement input must be rejected — and, critically, not
	// executed (the old string-concat implementation ran it).
	if _, err := db.Explain(`SELECT 1; UPDATE matrix SET v = -1`); err == nil {
		t.Fatal("multi-statement Explain should error")
	}
	if got := db.MustQuery(`SELECT v FROM matrix WHERE x = 3 AND y = 3`).Get(0, 0).AsFloat(); got != 15 {
		t.Fatalf("Explain executed its input! v(3,3) = %v", got)
	}
	if _, err := db.Explain(`UPDATE matrix SET v = 0`); err == nil {
		t.Fatal("Explain of non-SELECT should error")
	}
}

// TestConflictingEqualityPushdown is the regression test for the
// shared-pushdown convergence: WHERE x = 1 AND x = 2 must yield zero
// rows (the executor used to let the second equality overwrite the
// first, returning x=2's rows).
func TestConflictingEqualityPushdown(t *testing.T) {
	db := walkthroughDB(t)
	for _, par := range []int{1, 4} {
		db.Parallelism(par)
		rs := db.MustQuery(`SELECT x, y, v FROM matrix WHERE x = 1 AND x = 2`)
		if rs.NumRows() != 0 {
			t.Fatalf("par=%d: contradiction returned %d rows:\n%s", par, rs.NumRows(), rs)
		}
	}
	// And the plan keeps the contradiction visible.
	plan, err := db.Explain(`SELECT x FROM matrix WHERE x = 1 AND x = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Filter") || !strings.Contains(plan, "x=1 (pushed)") {
		t.Fatalf("expected pushed point plus residual filter:\n%s", plan)
	}
}

// TestRangePushdownConsumed checks that consumed range conjuncts
// restrict correctly (bounds are exact, half-open).
func TestRangePushdownConsumed(t *testing.T) {
	db := walkthroughDB(t)
	rs := db.MustQuery(`SELECT x, y FROM matrix WHERE x >= 1 AND x < 3 AND y <= 1`)
	if rs.NumRows() != 4 { // x in {1,2}, y in {0,1}
		t.Fatalf("range query returned %d rows, want 4:\n%s", rs.NumRows(), rs)
	}
	// Float bounds must NOT be consumed into integer scan bounds.
	rs = db.MustQuery(`SELECT x FROM matrix WHERE x > 0.5 AND y = 0`)
	if rs.NumRows() != 3 { // x in {1,2,3}
		t.Fatalf("float lower bound returned %d rows, want 3:\n%s", rs.NumRows(), rs)
	}
}
