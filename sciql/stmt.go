package sciql

import (
	"container/list"
	"context"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// Stmt is a prepared statement: the SQL text is parsed once and the
// engine's per-node plan memoization means the optimized plan is
// computed once too — re-executions bind ?name parameters and run,
// skipping parse and plan entirely. Plan-cache entries are stamped
// with the catalog version: DDL committed by any connection makes the
// statement re-resolve on its next execution instead of running
// against stale bindings.
//
// A Stmt prepared on a Conn executes on that connection (and inside
// its transaction, if one is open). A Stmt prepared on the DB
// executes each call on its own implicit connection, so DB-level
// statements are safe for concurrent use. Close is optional
// (statements hold no external resources) but keeps the API parallel
// to database/sql.
type Stmt struct {
	db    *DB
	conn  *Conn // nil for DB-level statements
	text  string
	stmts []ast.Statement
}

// session returns the engine session one execution runs on.
func (s *Stmt) session() (*exec.Engine, error) {
	if s.conn != nil {
		if err := s.conn.check(); err != nil {
			return nil, err
		}
		return s.conn.eng, nil
	}
	return s.db.engine.NewSession(), nil
}

// Prepare parses sql (one or more semicolon-separated statements)
// once and returns a reusable statement handle.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	stmts, err := db.compile(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, text: sql, stmts: stmts}, nil
}

// Text returns the statement's SQL.
func (s *Stmt) Text() string { return s.text }

// Close releases the statement. It is a no-op today.
func (s *Stmt) Close() error { return nil }

// Exec runs the prepared statement(s), returning the last result.
func (s *Stmt) Exec(args ...Arg) (*Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext is Exec bound to a context; cancellation aborts long
// scans and returns ctx.Err().
func (s *Stmt) ExecContext(ctx context.Context, args ...Arg) (*Result, error) {
	eng, err := s.session()
	if err != nil {
		return nil, err
	}
	return s.db.execTraced(ctx, eng, s.text, s.stmts, args)
}

// Query runs a prepared single-SELECT statement, materializing the
// rows (Result is the materialized view of the same cursor pipeline
// QueryContext streams from).
func (s *Stmt) Query(args ...Arg) (*Result, error) {
	rows, err := s.QueryContext(context.Background(), args...)
	if err != nil {
		return nil, err
	}
	return rows.materialize()
}

// QueryContext runs a prepared single-SELECT statement as a streaming
// cursor against the snapshot pinned when the query starts.
func (s *Stmt) QueryContext(ctx context.Context, args ...Arg) (*Rows, error) {
	sel, err := s.selectStmt()
	if err != nil {
		return nil, err
	}
	eng, err := s.session()
	if err != nil {
		return nil, err
	}
	return s.db.queryTraced(ctx, eng, s.text, sel, args)
}

func (s *Stmt) selectStmt() (ast.Statement, error) {
	if len(s.stmts) != 1 {
		return nil, fmt.Errorf("Query requires a single SELECT; statement has %d statements", len(s.stmts))
	}
	switch s.stmts[0].(type) {
	case *ast.Select, *ast.Explain:
		return s.stmts[0], nil
	}
	return nil, fmt.Errorf("Query requires a SELECT; use Exec for %T", s.stmts[0])
}

// --- statement cache -------------------------------------------------------

// defaultPlanCacheSize bounds the DB's LRU statement cache: ad-hoc
// Query/Exec calls with identical text reuse the parsed AST, and —
// because the engine memoizes its planning decision per AST node —
// skip the optimizer as well.
const defaultPlanCacheSize = 256

// stmtCache is a small LRU keyed by SQL text.
type stmtCache struct {
	cap     int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	text  string
	stmts []ast.Statement
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		return nil
	}
	return &stmtCache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

func (c *stmtCache) get(text string) ([]ast.Statement, bool) {
	el, ok := c.entries[text]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).stmts, true
}

func (c *stmtCache) put(text string, stmts []ast.Statement) {
	if el, ok := c.entries[text]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).stmts = stmts
		return
	}
	c.entries[text] = c.order.PushFront(&cacheEntry{text: text, stmts: stmts})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).text)
	}
}

// compile parses sql through the DB's statement cache: a hit reuses
// the parsed AST (and thereby the engine's memoized plan); a miss
// parses and caches. Hits and misses count into the
// stmt_cache_hit_total / stmt_cache_miss_total metrics, and an armed
// trace hook observes the parse phase with its duration.
func (db *DB) compile(sql string) ([]ast.Statement, error) {
	start := time.Now()
	db.mu.Lock()
	if db.cache != nil {
		if stmts, ok := db.cache.get(sql); ok {
			db.mu.Unlock()
			db.tel.stmtHit.Inc()
			if db.traceArmed() {
				db.fire(TraceEvent{Phase: TraceParse, Query: sql, Kind: scriptKind(stmts), D: time.Since(start), When: time.Now()})
			}
			return stmts, nil
		}
	}
	db.mu.Unlock()
	db.tel.stmtMiss.Inc()
	stmts, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if db.traceArmed() {
		db.fire(TraceEvent{Phase: TraceParse, Query: sql, Kind: scriptKind(stmts), D: time.Since(start), When: time.Now()})
	}
	db.mu.Lock()
	if db.cache != nil {
		db.cache.put(sql, stmts)
	}
	db.mu.Unlock()
	return stmts, nil
}

// SetPlanCacheSize resizes the DB's statement/plan LRU cache. n <= 0
// disables caching (every call re-parses and re-plans); the default
// is 256 entries.
func (db *DB) SetPlanCacheSize(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.cache = newStmtCache(n)
}
