package sciql

import (
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	db := Open()
	db.MustExec(`
		CREATE ARRAY matrix (
			x INTEGER DIMENSION[4],
			y INTEGER DIMENSION[4],
			v FLOAT DEFAULT 0.0);
		UPDATE matrix SET v = x * 4 + y;
	`)
	rs := db.MustQuery(`SELECT [x], [y], AVG(v) FROM matrix GROUP BY DISTINCT matrix[x:x+2][y:y+2]`)
	if rs.NumRows() != 4 {
		t.Fatalf("distinct tiles = %d, want 4", rs.NumRows())
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	db := Open()
	if _, err := db.Query(`CREATE TABLE t (a INTEGER)`); err == nil {
		t.Fatal("Query should reject DDL")
	}
}

func TestParams(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a INTEGER, s VARCHAR(10), w TIMESTAMP)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'x', TIMESTAMP '2010-01-01'), (2, 'y', TIMESTAMP '2011-01-01')`)
	rs := db.MustQuery(`SELECT a FROM t WHERE a > ?lo AND s = ?name`,
		Int("lo", 0), String("name", "y"))
	if rs.NumRows() != 1 || rs.Get(0, 0).I != 2 {
		t.Fatalf("param query wrong: %v", rs)
	}
	rs = db.MustQuery(`SELECT a FROM t WHERE w >= ?cut`,
		Time("cut", time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)))
	if rs.NumRows() != 1 {
		t.Fatalf("time param query rows = %d", rs.NumRows())
	}
	rs = db.MustQuery(`SELECT ?f * 2`, Float("f", 2.25))
	if rs.Get(0, 0).AsFloat() != 4.5 {
		t.Fatal("float param wrong")
	}
}

func TestQueryArrayCoercion(t *testing.T) {
	db := Open()
	db.MustExec(`
		CREATE TABLE mtable (x INTEGER, y INTEGER, v FLOAT);
		INSERT INTO mtable VALUES (0, 0, 1.0), (0, 1, 2.0), (5, 5, 9.0);
	`)
	arr, err := db.QueryArray(`SELECT [x], [y], v FROM mtable`)
	if err != nil {
		t.Fatal(err)
	}
	if arr.NumDims() != 2 || arr.Len() != 3 {
		t.Fatalf("coerced array: dims=%d len=%d", arr.NumDims(), arr.Len())
	}
	if got := arr.Get([]int64{5, 5}, 0).AsFloat(); got != 9 {
		t.Errorf("cell (5,5) = %v", got)
	}
	if got := arr.Get([]int64{3, 3}, 0); !got.Null {
		t.Errorf("unfilled cell should be NULL, got %v", got)
	}
}

func TestRegisterExternalRoundTrip(t *testing.T) {
	db := Open()
	db.RegisterExternal("twice", func(args []Value) (Value, error) {
		return NewFloat(args[0].AsFloat() * 2), nil
	})
	db.MustExec(`CREATE FUNCTION twice (v FLOAT) RETURNS FLOAT EXTERNAL NAME 'twice'`)
	rs := db.MustQuery(`SELECT twice(21.0)`)
	if rs.Get(0, 0).AsFloat() != 42 {
		t.Fatal("external round trip failed")
	}
}

func TestExternalArrayArg(t *testing.T) {
	db := Open()
	db.RegisterExternal("cellsum", func(args []Value) (Value, error) {
		a, ok := AsArray(args[0])
		if !ok {
			return NewNullFloat(), nil
		}
		sum := 0.0
		a.Scan(func(_ []int64, vals []Value) bool {
			sum += vals[0].AsFloat()
			return true
		})
		return NewFloat(sum), nil
	})
	db.MustExec(`
		CREATE ARRAY v1 (i INTEGER DIMENSION[3], v FLOAT DEFAULT 0.0);
		UPDATE v1 SET v = i;
		CREATE FUNCTION cellsum (a ARRAY (i INTEGER DIMENSION, v FLOAT)) RETURNS FLOAT EXTERNAL NAME 'cellsum';
	`)
	rs := db.MustQuery(`SELECT cellsum(v1[*])`)
	if rs.Get(0, 0).AsFloat() != 3 {
		t.Fatalf("cellsum = %v, want 3", rs.Get(0, 0))
	}
}

func TestStorageHint(t *testing.T) {
	db := Open()
	db.SetStorageHint("forced", "tabular", 0)
	db.MustExec(`CREATE ARRAY forced (x INTEGER DIMENSION[8], v FLOAT DEFAULT 1.0)`)
	a, ok := db.LookupArray("forced")
	if !ok {
		t.Fatal("array missing")
	}
	if a.Scheme() != "tabular" {
		t.Fatalf("scheme = %s, want tabular", a.Scheme())
	}
}

func TestArrayGoAccess(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE ARRAY g (x INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
	a, _ := db.LookupArray("g")
	if err := a.SetFloat([]int64{2}, 0, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := a.SetInt([]int64{3}, 0, 2); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := a.Bounds()
	if err != nil || lo[0] != 0 || hi[0] != 3 {
		t.Fatalf("bounds: %v %v %v", lo, hi, err)
	}
	rs := db.MustQuery(`SELECT v FROM g WHERE x = 2`)
	if rs.Get(0, 0).AsFloat() != 7.5 {
		t.Fatal("Go-side write not visible to SQL")
	}
}

func TestResultRendering(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a INTEGER, b VARCHAR(5)); INSERT INTO t VALUES (1, 'x')`)
	s := db.MustQuery(`SELECT a, b FROM t`).String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "x") {
		t.Fatalf("rendering missing content:\n%s", s)
	}
}

func TestErrorsSurface(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`SELECT FROM`); err == nil {
		t.Fatal("parse error should surface")
	}
	if _, err := db.Exec(`SELECT * FROM nosuch`); err == nil {
		t.Fatal("missing table should surface")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustExec should panic on error")
		}
	}()
	db.MustExec(`SELECT * FROM nosuch`)
}
