package sciql

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/faultinject"
)

// The fault-injection invariant suite: a fixed query set runs with
// each engine fault point armed — as an injected error and as an
// injected panic — across serial/parallel and vectorized/interpreted
// execution. Whatever fires, the engine must come back with either the
// byte-identical baseline result or a clean typed error, and never a
// wrong answer, a leaked snapshot, a leaked goroutine, or a poisoned
// session.

var faultPoints = []string{
	"catalog.commit",
	"scan.chunk",
	"join.build",
	"pool.worker",
	"cursor.close",
}

const (
	faultScanQ = `SELECT x, y, v FROM fmatrix WHERE v > 300`
	faultJoinQ = `SELECT m.x, m.y, m.v, s.w FROM fmatrix AS m JOIN fside AS s ON m.x = s.t WHERE s.w > 30`
	faultDML   = `UPDATE fscratch SET w = w + 1`
)

// setupFaultDB builds the fixed dataset: an 80x80 scan target (big
// enough that par=4 schedules real morsels), a 1-D join side, and a
// scratch array for the DML/commit path.
func setupFaultDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		CREATE ARRAY fmatrix (x INTEGER DIMENSION[80], y INTEGER DIMENSION[80], v FLOAT DEFAULT 0.0);
		UPDATE fmatrix SET v = x * 7 + y;
		CREATE ARRAY fside (t INTEGER DIMENSION[80], w FLOAT DEFAULT 0.0);
		UPDATE fside SET w = t * 3;
		CREATE ARRAY fscratch (i INTEGER DIMENSION[8], w FLOAT DEFAULT 0.0);
	`)
	return db
}

func TestFaultInjectionInvariants(t *testing.T) {
	defer faultinject.Reset()
	base := setupFaultDB(t)
	scanWant := base.MustQuery(faultScanQ).String()
	joinWant := base.MustQuery(faultJoinQ).String()
	if scanWant == "" || joinWant == "" {
		t.Fatal("baseline queries returned no output")
	}

	kinds := []struct {
		name string
		spec faultinject.Spec
	}{
		{"error", faultinject.Spec{Kind: faultinject.Error}},
		{"panic", faultinject.Spec{Kind: faultinject.Panic}},
	}
	for _, pt := range faultPoints {
		for _, kind := range kinds {
			for _, par := range []int{1, 4} {
				for _, vec := range []bool{true, false} {
					name := fmt.Sprintf("%s/%s/par%d/vec%v", pt, kind.name, par, vec)
					t.Run(name, func(t *testing.T) {
						runFaultCombo(t, pt, kind.spec, par, vec, scanWant, joinWant)
					})
				}
			}
		}
	}
}

func runFaultCombo(t *testing.T, point string, spec faultinject.Spec, par int, vec bool, scanWant, joinWant string) {
	db := setupFaultDB(t)
	db.Parallelism(par)
	db.Vectorize(vec)
	c, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	goroutines := runtime.NumGoroutine()
	faultinject.Arm(point, spec)
	defer faultinject.Disarm(point)

	// Statement path: scan, join, DML.
	got, err := mustMaterialize(c, faultScanQ)
	checkFaultResult(t, "scan", got, err, scanWant)
	got, err = mustMaterialize(c, faultJoinQ)
	checkFaultResult(t, "join", got, err, joinWant)
	if _, err := c.ExecContext(context.Background(), faultDML); err != nil {
		checkCleanFaultErr(t, "dml", err)
	}

	// Cursor path: stream a few rows, then Close with the fault armed.
	rows, err := c.QueryContext(context.Background(), faultScanQ)
	if err != nil {
		checkCleanFaultErr(t, "cursor-open", err)
	} else {
		for i := 0; i < 3 && rows.Next(); i++ {
		}
		if err := rows.Err(); err != nil {
			checkCleanFaultErr(t, "cursor-next", err)
		}
		rows.Close()
	}

	faultinject.Disarm(point)

	// Invariants: no leaked snapshot, no leaked goroutine, and the same
	// connection still answers correctly — reads and writes both.
	if got := pinned(db); got != 0 {
		t.Errorf("snapshots_pinned = %d, want 0", got)
	}
	waitForGoroutines(t, goroutines)
	res, err := mustMaterialize(c, faultScanQ)
	if err != nil {
		t.Fatalf("conn poisoned after fault: %v", err)
	}
	if res != scanWant {
		t.Error("post-fault result differs from baseline")
	}
	if _, err := c.ExecContext(context.Background(), faultDML); err != nil {
		t.Errorf("conn write path poisoned after fault: %v", err)
	}
}

// mustMaterialize runs one streaming query to completion on the
// connection, returning the rendered result or the terminal error.
func mustMaterialize(c *Conn, q string) (string, error) {
	rows, err := c.QueryContext(context.Background(), q)
	if err != nil {
		return "", err
	}
	ds, err := rows.materialize()
	if err != nil {
		return "", err
	}
	return ds.String(), nil
}

// checkFaultResult accepts exactly two outcomes: the byte-identical
// baseline result, or a clean typed error. Anything else — a wrong
// answer, an untyped error — fails the invariant.
func checkFaultResult(t *testing.T, label string, got string, err error, want string) {
	t.Helper()
	if err != nil {
		checkCleanFaultErr(t, label, err)
		return
	}
	if got != want {
		t.Errorf("%s: result differs from baseline under armed fault", label)
	}
}

// checkCleanFaultErr requires the error to be one of the typed shapes
// an injected fault may surface as: the injected error itself or a
// contained panic.
func checkCleanFaultErr(t *testing.T, label string, err error) {
	t.Helper()
	var pe *PanicError
	if errors.Is(err, faultinject.ErrInjected) || errors.As(err, &pe) {
		return
	}
	t.Errorf("%s: fault surfaced as untyped error: %v", label, err)
}
