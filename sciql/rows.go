package sciql

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/value"
)

// Rows is a streaming result cursor, modeled on database/sql.Rows:
//
//	rows, err := db.QueryContext(ctx, `SELECT x, v FROM m WHERE v > ?lo`, sciql.Float("lo", 0.5))
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var x int64
//	    var v float64
//	    if err := rows.Scan(&x, &v); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// For eligible queries (single-array scan/filter/project pipelines)
// rows are pulled incrementally from the executor — the first row is
// available before the scan finishes, and Close stops the scan early.
// Other shapes execute fully and stream from the completed result.
// The cursor reads the catalog snapshot pinned when the query
// started, so DML committed by other connections never changes (or
// tears) the rows an open cursor returns. A Rows cursor does count as
// the in-flight statement of its own connection: run the next
// statement on that connection after Close.
type Rows struct {
	cur    *exec.Cursor
	row    []Value
	err    error
	closed bool
	// query is the SQL text, attached to contained-panic errors.
	query string
	// tr is the per-cursor trace state when the owning DB has a trace
	// hook or slow-query threshold armed; nil otherwise.
	tr *rowsTrace
}

// Columns returns the result column names in order.
func (r *Rows) Columns() []string {
	cols := r.cur.Cols()
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// ColumnTypeNames returns the engine type of each result column as a
// SciQL type name ("INTEGER", "FLOAT", "VARCHAR", "BOOLEAN",
// "TIMESTAMP", "ARRAY"). For streaming cursors the type of a computed
// expression may not be known before rows flow; such columns report
// "" and refine during iteration. The database/sql driver surfaces
// these through sql.ColumnType.
func (r *Rows) ColumnTypeNames() []string {
	cols := r.cur.Cols()
	out := make([]string, len(cols))
	for i, c := range cols {
		if c.Typ == value.Unknown {
			out[i] = ""
			continue
		}
		out[i] = c.Typ.String()
	}
	return out
}

// Next advances to the next row, reporting false at the end of the
// result (or on error — check Err).
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	row, err := r.cur.Next()
	if err != nil {
		r.err = tagQuery(err, r.query)
		r.close()
		return false
	}
	if row == nil {
		r.close()
		return false
	}
	r.row = row
	if t := r.tr; t != nil {
		t.n++
		if !t.first {
			t.first = true
			t.db.fire(TraceEvent{Phase: TraceFirstRow, Query: t.query, Kind: t.kind, D: time.Since(t.start), When: time.Now()})
		}
	}
	return true
}

// Values returns the current row's raw engine values. The slice is
// valid until the next call to Next.
func (r *Rows) Values() []Value { return r.row }

// Scan copies the current row into dest: *int64, *int, *float64,
// *string, *bool, *time.Time, *sciql.Value or *any.
func (r *Rows) Scan(dest ...any) error {
	if r.row == nil {
		return fmt.Errorf("sciql: Scan called without a successful Next")
	}
	if len(dest) != len(r.row) {
		return fmt.Errorf("sciql: Scan expects %d destinations, got %d", len(r.row), len(dest))
	}
	for i, d := range dest {
		if err := scanValue(r.row[i], d); err != nil {
			return fmt.Errorf("sciql: Scan column %d: %w", i, err)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor, stopping any in-flight scan. It is safe
// to call multiple times and after full iteration.
func (r *Rows) Close() error {
	r.close()
	return nil
}

func (r *Rows) close() {
	if !r.closed {
		r.closed = true
		r.cur.Close()
		if t := r.tr; t != nil {
			r.tr = nil
			t.db.noteClose(t.query, t.kind, t.start, t.n, r.err)
		}
	}
}

// materialize drains the cursor into the classic materialized Result —
// the other view of the same execution.
func (r *Rows) materialize() (*Result, error) {
	defer r.close()
	ds, err := r.cur.Materialize()
	err = tagQuery(err, r.query)
	if t := r.tr; t != nil && err == nil && ds != nil {
		// Materialization bypasses Next, so record the row count here
		// for the TraceClose event fired by the deferred close.
		t.n = int64(ds.NumRows())
	}
	return ds, err
}

// scanValue converts one engine value into a Go destination.
func scanValue(v Value, dest any) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
		return nil
	case *any:
		*d = GoValue(v)
		return nil
	}
	if v.Null {
		return fmt.Errorf("cannot scan NULL into %T (use *sciql.Value or *any)", dest)
	}
	switch d := dest.(type) {
	case *int64:
		if !numeric(v) {
			return fmt.Errorf("cannot scan %s into *int64", v.Typ)
		}
		*d = v.AsInt()
	case *int:
		if !numeric(v) {
			return fmt.Errorf("cannot scan %s into *int", v.Typ)
		}
		*d = int(v.AsInt())
	case *float64:
		if !numeric(v) {
			return fmt.Errorf("cannot scan %s into *float64", v.Typ)
		}
		*d = v.AsFloat()
	case *string:
		*d = v.String()
	case *bool:
		if v.Typ != value.Bool {
			return fmt.Errorf("cannot scan %s into *bool", v.Typ)
		}
		*d = v.B
	case *time.Time:
		if v.Typ != value.Timestamp {
			return fmt.Errorf("cannot scan %s into *time.Time", v.Typ)
		}
		*d = time.UnixMicro(v.I).UTC()
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	return nil
}

func numeric(v Value) bool {
	switch v.Typ {
	case value.Int, value.Float, value.Timestamp, value.Bool:
		return true
	}
	return false
}

// GoValue maps an engine value onto its natural Go representation:
// nil for NULL, int64, float64, string, bool, time.Time, or the raw
// array handle. The database/sql driver builds on it.
func GoValue(v Value) any {
	if v.Null {
		return nil
	}
	switch v.Typ {
	case value.Int:
		return v.I
	case value.Float:
		return v.F
	case value.String:
		return v.S
	case value.Bool:
		return v.B
	case value.Timestamp:
		return time.UnixMicro(v.I).UTC()
	default:
		return v.A
	}
}
