package sciql

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// setupTelemetryDB builds an array big enough that streaming cursors
// stay open across many Next calls and parallel scans schedule real
// morsel batches.
func setupTelemetryDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`
		CREATE ARRAY tmatrix (x INTEGER DIMENSION[256], y INTEGER DIMENSION[256], v FLOAT DEFAULT 0.0);
		UPDATE tmatrix SET v = x * 31 + y;
	`)
	return db
}

// pinned reads the snapshots_pinned gauge.
func pinned(db *DB) int64 { return db.Metrics()["snapshots_pinned"] }

// TestSnapshotPinsReturnToBaseline is the snapshot-retention
// regression suite: every way a streaming cursor can end — full drain,
// early Close, context cancellation mid-iteration, abandonment followed
// by connection teardown, abandonment followed by DB.Close — must
// return the snapshots_pinned gauge to zero, so no abandoned Rows can
// retain superseded catalog versions.
func TestSnapshotPinsReturnToBaseline(t *testing.T) {
	db := setupTelemetryDB(t)
	const q = `SELECT x, y, v FROM tmatrix WHERE v > 10`
	if got := pinned(db); got != 0 {
		t.Fatalf("baseline snapshots_pinned = %d, want 0", got)
	}

	// Full drain through materialization.
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := pinned(db); got != 0 {
		t.Errorf("after materialized query: snapshots_pinned = %d, want 0", got)
	}

	// Early Close on a streaming cursor.
	rows, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if got := pinned(db); got != 1 {
		t.Errorf("open cursor: snapshots_pinned = %d, want 1", got)
	}
	rows.Close()
	if got := pinned(db); got != 0 {
		t.Errorf("after Close: snapshots_pinned = %d, want 0", got)
	}

	// Context cancellation mid-iteration: Next reports the error and
	// the cursor self-closes, releasing the pin.
	for _, par := range []int{1, 4} {
		db.Parallelism(par)
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := db.QueryContext(ctx, q)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		rows.Next()
		cancel()
		for rows.Next() {
		}
		rows.Close()
		if got := pinned(db); got != 0 {
			t.Errorf("par=%d after cancel: snapshots_pinned = %d, want 0", par, got)
		}
	}
	db.Parallelism(1)

	// Rows abandoned without Close on an explicit connection:
	// Conn.Close drains the session's cursor pins.
	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	abandoned, err := conn.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	abandoned.Next()
	if got := pinned(db); got != 1 {
		t.Errorf("abandoned conn cursor: snapshots_pinned = %d, want 1", got)
	}
	conn.Close()
	if got := pinned(db); got != 0 {
		t.Errorf("after Conn.Close with abandoned Rows: snapshots_pinned = %d, want 0", got)
	}

	// Rows abandoned on an implicit (per-call) session: no connection
	// teardown ever sees it, so DB.Close is the safety net.
	leaked, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	leaked.Next()
	if got := pinned(db); got != 1 {
		t.Errorf("abandoned implicit-session cursor: snapshots_pinned = %d, want 1", got)
	}
	db.Close()
	if got := pinned(db); got != 0 {
		t.Errorf("after DB.Close with abandoned Rows: snapshots_pinned = %d, want 0", got)
	}
	// The release must be idempotent: a late Close on the drained
	// cursor finds nothing to do.
	leaked.Close()
	if got := pinned(db); got != 0 {
		t.Errorf("after late Close: snapshots_pinned = %d, want 0", got)
	}

	// The database stays fully usable after Close.
	if _, err := db.Query(q); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
}

// waitForZero polls the named gauges until all read zero or the
// deadline passes, returning the last snapshot.
func waitForZero(db *DB, names ...string) map[string]int64 {
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := db.Metrics()
		done := true
		for _, n := range names {
			if m[n] != 0 {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			return m
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolQuiescence is the goroutine-leak counterpart: after a
// canceled parallel query, after completed queries, and after DB.Close,
// the pool's queue-depth and in-flight gauges must drop to zero and no
// worker goroutines may linger, at parallelism 1 and 4.
func TestPoolQuiescence(t *testing.T) {
	db := setupTelemetryDB(t)
	const q = `SELECT x, y, v FROM tmatrix WHERE MOD(x * 31 + y, 7) < 5`
	baseline := runtime.NumGoroutine()
	for _, par := range []int{1, 4} {
		db.Parallelism(par)

		// Completed query.
		if _, err := db.Query(q); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		m := waitForZero(db, "pool_queue_depth", "pool_inflight")
		if m["pool_queue_depth"] != 0 || m["pool_inflight"] != 0 {
			t.Errorf("par=%d after query: queue=%d inflight=%d, want 0/0",
				par, m["pool_queue_depth"], m["pool_inflight"])
		}

		// Canceled mid-iteration.
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := db.QueryContext(ctx, q)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		rows.Next()
		cancel()
		for rows.Next() {
		}
		rows.Close()
		m = waitForZero(db, "pool_queue_depth", "pool_inflight")
		if m["pool_queue_depth"] != 0 || m["pool_inflight"] != 0 {
			t.Errorf("par=%d after cancel: queue=%d inflight=%d, want 0/0",
				par, m["pool_queue_depth"], m["pool_inflight"])
		}
	}

	db.Close()
	m := waitForZero(db, "pool_queue_depth", "pool_inflight")
	if m["pool_queue_depth"] != 0 || m["pool_inflight"] != 0 {
		t.Errorf("after DB.Close: queue=%d inflight=%d, want 0/0",
			m["pool_queue_depth"], m["pool_inflight"])
	}

	// Worker goroutines are per-query and joined before the query
	// returns; give the runtime a moment to retire exiting ones.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutines leaked: %d running, baseline %d", n, baseline)
	}
}

// TestTraceHookAndSlowQueryLog exercises the statement-lifecycle
// surface end to end: an installed hook observes parse, plan,
// exec-start, first-row and close in order for a streamed SELECT, and a
// 1ns slow-query threshold logs every statement with its kind, row
// count and text.
func TestTraceHookAndSlowQueryLog(t *testing.T) {
	db := setupTelemetryDB(t)
	var (
		mu     sync.Mutex
		phases []TracePhase
	)
	db.SetTraceHook(func(ev TraceEvent) {
		mu.Lock()
		phases = append(phases, ev.Phase)
		mu.Unlock()
	})
	var slow bytes.Buffer
	db.SetSlowQueryThreshold(time.Nanosecond, &slow)

	const q = `SELECT x, y FROM tmatrix WHERE v > 100 LIMIT 5`
	rows, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	db.SetTraceHook(nil)
	db.SetSlowQueryThreshold(0, nil)
	if n != 5 {
		t.Fatalf("drained %d rows, want 5", n)
	}

	mu.Lock()
	got := append([]TracePhase(nil), phases...)
	mu.Unlock()
	want := []TracePhase{TraceParse, TracePlan, TraceExecStart, TraceFirstRow, TraceClose}
	if len(got) != len(want) {
		t.Fatalf("observed %d trace events (%v), want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("trace event %d = %v, want %v", i, got[i], want[i])
		}
	}

	line := slow.String()
	for _, frag := range []string{"slow_query\t", "kind=select", "rows=5", "query=\"SELECT x, y"} {
		if !strings.Contains(line, frag) {
			t.Errorf("slow-query log missing %q:\n%s", frag, line)
		}
	}
	if m := db.Metrics(); m["slow_query_total"] < 1 {
		t.Errorf("slow_query_total = %d, want >= 1", m["slow_query_total"])
	}
}

// TestMetricsAccounting spot-checks the always-on engine counters: one
// streamed SELECT over the 64k-cell array accounts its scanned cells
// and produced rows, statement totals advance by kind, and the
// statement cache reports its hit.
func TestMetricsAccounting(t *testing.T) {
	db := setupTelemetryDB(t)
	const q = `SELECT x, y FROM tmatrix WHERE v >= 0`
	before := db.Metrics()
	rs := db.MustQuery(q)
	rs2 := db.MustQuery(q)
	after := db.Metrics()
	if rs.NumRows() != rs2.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", rs.NumRows(), rs2.NumRows())
	}
	cells := after["scan_cells_total"] - before["scan_cells_total"]
	if cells != 2*256*256 {
		t.Errorf("scan_cells_total advanced by %d, want %d", cells, 2*256*256)
	}
	rowsOut := after["scan_rows_total"] - before["scan_rows_total"]
	if rowsOut != int64(2*rs.NumRows()) {
		t.Errorf("scan_rows_total advanced by %d, want %d", rowsOut, 2*rs.NumRows())
	}
	if d := after["stmt_select_total"] - before["stmt_select_total"]; d != 2 {
		t.Errorf("stmt_select_total advanced by %d, want 2", d)
	}
	if d := after["stmt_cache_hit_total"] - before["stmt_cache_hit_total"]; d < 1 {
		t.Errorf("stmt_cache_hit_total advanced by %d, want >= 1 (second query reuses the AST)", d)
	}
}

// TestGovernorTelemetrySeries walks every resource-governor series
// through one advancing event: admitted on any statement, then — armed
// one knob at a time — a budget abort, a statement timeout, an
// admission rejection and a contained panic, each strictly
// incrementing its counter, with the memory gauge back at zero when
// the database is idle.
func TestGovernorTelemetrySeries(t *testing.T) {
	db := setupTelemetryDB(t)
	for _, name := range []string{
		"queries_admitted_total", "queries_rejected_total",
		"queries_timed_out_total", "queries_panicked_total",
		"mem_budget_aborts_total", "mem_in_use_bytes",
	} {
		if _, ok := db.Metrics()[name]; !ok {
			t.Errorf("series %q missing from the metrics snapshot", name)
		}
	}
	const q = `SELECT x, y, v FROM tmatrix WHERE v > 100`

	before := db.Metrics()
	db.MustQuery(q)
	if d := db.Metrics()["queries_admitted_total"] - before["queries_admitted_total"]; d < 1 {
		t.Errorf("queries_admitted_total advanced by %d, want >= 1", d)
	}

	db.SetMemoryLimit(1<<10, 0)
	before = db.Metrics()
	if _, err := db.Query(q); err == nil {
		t.Fatal("1 KiB budget did not abort the scan")
	}
	if d := db.Metrics()["mem_budget_aborts_total"] - before["mem_budget_aborts_total"]; d != 1 {
		t.Errorf("mem_budget_aborts_total advanced by %d, want 1", d)
	}
	db.SetMemoryLimit(0, 0)

	db.SetStatementTimeout(time.Nanosecond)
	before = db.Metrics()
	if _, err := db.Query(q); err == nil {
		t.Fatal("1ns statement timeout did not fire")
	}
	if d := db.Metrics()["queries_timed_out_total"] - before["queries_timed_out_total"]; d != 1 {
		t.Errorf("queries_timed_out_total advanced by %d, want 1", d)
	}
	db.SetStatementTimeout(0)

	db.SetMaxConcurrentQueries(1)
	db.SetAdmissionQueue(0, 0)
	rows, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	before = db.Metrics()
	if _, err := db.Query(q); err == nil {
		t.Fatal("saturated admission did not reject")
	}
	if d := db.Metrics()["queries_rejected_total"] - before["queries_rejected_total"]; d != 1 {
		t.Errorf("queries_rejected_total advanced by %d, want 1", d)
	}
	rows.Close()
	db.SetMaxConcurrentQueries(0)

	db.RegisterExternal("telboom", func(args []Value) (Value, error) { panic("telemetry boom") })
	db.MustExec(`CREATE FUNCTION telboom (v FLOAT) RETURNS FLOAT EXTERNAL NAME 'telboom'`)
	before = db.Metrics()
	if _, err := db.Query(`SELECT telboom(v) FROM tmatrix`); err == nil {
		t.Fatal("panicking statement returned no error")
	}
	if d := db.Metrics()["queries_panicked_total"] - before["queries_panicked_total"]; d != 1 {
		t.Errorf("queries_panicked_total advanced by %d, want 1", d)
	}

	if got := db.Metrics()["mem_in_use_bytes"]; got != 0 {
		t.Errorf("idle mem_in_use_bytes = %d, want 0", got)
	}
}
