package sciql

import (
	"context"
	"errors"
)

// This file maps the engine's typed errors onto SQLSTATE codes, the
// five-character error classification every PostgreSQL client library
// understands. The network server (internal/server) attaches the code
// to pgwire ErrorResponse messages and HTTP/JSON error bodies, so a
// psql/pgx/JDBC front end can distinguish a retryable serialization
// failure from an admission rejection without parsing message text.

// SQLSTATE codes surfaced by the engine, following the PostgreSQL
// assignments where one exists for the same condition.
const (
	// SQLStateSyntaxError classifies parse errors (42601).
	SQLStateSyntaxError = "42601"
	// SQLStateGeneric classifies other statement-level errors —
	// unknown arrays, type mismatches, unsupported shapes (42000,
	// syntax_error_or_access_rule_violation).
	SQLStateGeneric = "42000"
	// SQLStateSerializationFailure classifies ErrTxConflict (40001):
	// first-committer-wins lost; retry the transaction.
	SQLStateSerializationFailure = "40001"
	// SQLStateQueryCanceled classifies ErrStatementTimeout and
	// caller/client cancellation (57014, query_canceled).
	SQLStateQueryCanceled = "57014"
	// SQLStateTooManyConnections classifies ErrAdmission (53300): no
	// execution slot, queue full or expired, or draining.
	SQLStateTooManyConnections = "53300"
	// SQLStateOutOfMemory classifies ErrMemoryBudget (53200).
	SQLStateOutOfMemory = "53200"
	// SQLStateInternalError classifies contained panics (XX000).
	SQLStateInternalError = "XX000"
	// SQLStateInFailedTransaction rejects statements sent inside an
	// aborted transaction block before ROLLBACK (25P02).
	SQLStateInFailedTransaction = "25P02"
	// SQLStateInvalidPassword rejects a failed startup authentication
	// exchange (28P01).
	SQLStateInvalidPassword = "28P01"
	// SQLStateAdminShutdown tells a connected client the server is
	// shutting down (57P01).
	SQLStateAdminShutdown = "57P01"
)

// SQLState classifies err as a SQLSTATE code. Typed governor and
// transaction errors map onto their PostgreSQL equivalents; anything
// unrecognized classifies as SQLStateGeneric (a statement-level user
// error), never as an internal error — XX000 is reserved for contained
// panics, which are engine bugs by definition. nil maps to "".
func SQLState(err error) string {
	if err == nil {
		return ""
	}
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		return SQLStateInternalError
	case errors.Is(err, ErrTxConflict):
		return SQLStateSerializationFailure
	case errors.Is(err, ErrStatementTimeout):
		return SQLStateQueryCanceled
	case errors.Is(err, ErrAdmission):
		return SQLStateTooManyConnections
	case errors.Is(err, ErrMemoryBudget):
		return SQLStateOutOfMemory
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return SQLStateQueryCanceled
	}
	return SQLStateGeneric
}
