# Tier-1 verification in one command: vet, build, race-enabled tests.
GO ?= go

.PHONY: all check build test bench

all: check

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench 'BenchmarkParallel|BenchmarkPreparedVsAdhoc|BenchmarkVectorizedScan|BenchmarkConcurrentReaders' -benchtime 2x -run '^$$' .
