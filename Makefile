# Tier-1 verification in one command: vet, lint, build, race-enabled tests.
GO ?= go

.PHONY: all check build test bench lint fuzz-smoke faulttest servertest

all: check

check: lint
	$(GO) build ./...
	$(GO) test -race ./...

# lint runs stock go vet plus the sciql-lint engine-invariant suite
# (catalogaccess, hotloopflush, ctxpoll, lockorder) as a vettool.
# The vettool path must be absolute: go vet execs it from each
# package's directory.
lint:
	$(GO) vet ./...
	$(GO) build -o bin/sciql-lint ./cmd/sciql-lint
	$(GO) vet -vettool=$(CURDIR)/bin/sciql-lint ./...

# faulttest runs the robustness suites under the race detector: the
# fault-injection invariants (every fault point armed as error and
# panic, serial/parallel x vectorized/interpreted), the resource
# governor's public knobs, and the pool's panic containment.
faulttest:
	$(GO) test -race -run 'TestFaultInjectionInvariants|TestPanicContainment|TestMemoryBudget|TestStatementTimeout|TestCallerCancelIsNotStatementTimeout|TestAdmission|TestDrain|TestGovernorTelemetrySeries' ./sciql/
	$(GO) test -race ./internal/governor/ ./internal/faultinject/ ./internal/parallel/

# fuzz-smoke gives each fuzz target a short budget; crash artifacts
# land in testdata/fuzz/ and become regression seeds.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLexer -fuzztime=30s -run '^$$' ./internal/sql/lexer/
	$(GO) test -fuzz=FuzzLexerAll -fuzztime=15s -run '^$$' ./internal/sql/lexer/
	$(GO) test -fuzz=FuzzParseRoundTrip -fuzztime=30s -run '^$$' ./internal/sql/parser/
	$(GO) test -fuzz=FuzzParseNoCrash -fuzztime=15s -run '^$$' ./internal/sql/parser/
	$(GO) test -fuzz=FuzzPgwireDecode -fuzztime=30s -run '^$$' ./internal/server/pgwire/

# servertest runs the sciqld network stack under the race detector:
# wire-protocol conformance over real TCP sockets (simple + extended
# flows, transactions, cancellation, admission, disconnects, drain
# shutdown), the HTTP/JSON surface, and the codec unit tests.
servertest:
	$(GO) test -race ./internal/server/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench 'BenchmarkParallel|BenchmarkPreparedVsAdhoc|BenchmarkVectorizedScan|BenchmarkConcurrentReaders' -benchtime 2x -run '^$$' .
