// Command sciql-lint runs the engine-invariant analyzer suite
// (internal/analyzers) over Go packages. It speaks the go vet vettool
// protocol, so the intended invocation is through the build system:
//
//	go build -o bin/sciql-lint ./cmd/sciql-lint
//	go vet -vettool=$PWD/bin/sciql-lint ./...
//
// which is what `make lint` does. Run directly with package patterns
// (`sciql-lint ./...`) it re-executes go vet against itself, so both
// spellings behave identically.
//
// The vettool protocol, implemented here without x/tools (the build
// has no module proxy): cmd/go probes the tool with -V=full (the
// printed line becomes the tool ID for vet result caching, so it
// embeds a content hash of the binary) and -flags (JSON list of extra
// flags; none here), then invokes it once per package with a single
// argument, the path to a JSON vet.cfg describing the package's files
// and the export data of its dependencies. Dependency packages arrive
// with VetxOnly set — they exist only to propagate analysis facts,
// which this suite does not use — and are skipped wholesale, which is
// also what keeps GOROOT and os/exec-lookalike packages out of the
// analyzers' way.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysis"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	cfgPath := ""
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return 0
		case arg == "-flags" || arg == "--flags":
			// No tool-specific flags: an empty JSON flag list.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		}
	}
	if cfgPath != "" {
		return runUnit(cfgPath)
	}
	return runStandalone(args)
}

// printVersion answers the cmd/go -V=full probe. The whole line is the
// vet tool ID: three fields, second "version", third not "devel", and
// a content hash so rebuilding the tool invalidates cached vet
// results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:8])
		}
	}
	fmt.Printf("sciql-lint version v0.1.0-%s\n", id)
}

// runStandalone handles direct invocation with package patterns by
// re-executing go vet with this binary as the vettool.
func runStandalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sciql-lint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "sciql-lint: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // source import path -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	Standard    map[string]bool

	ModulePath    string
	ModuleVersion string

	PackageVetx map[string]string // canonical path -> vetx (facts) file
	VetxOnly    bool
	VetxOutput  string

	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

var goVersionRE = regexp.MustCompile(`^go\d+\.\d+(\.\d+)?$`)

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sciql-lint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sciql-lint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go caches the vetx (facts) output when present; this suite
	// produces no facts, so publish an empty one unconditionally.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "sciql-lint: writing vetx output: %v\n", err)
			return 1
		}
	}
	// A dependency visited only for fact propagation: nothing to do.
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Imports resolve through the export data cmd/go already built:
	// source path -> canonical (ImportMap) -> export file (PackageFile).
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		canonical := path
		if mapped, ok := cfg.ImportMap[path]; ok {
			canonical = mapped
		}
		file, ok := cfg.PackageFile[canonical]
		if !ok {
			return nil, fmt.Errorf("no export data for import %q", path)
		}
		return os.Open(file)
	})

	var tcErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
	}
	if goVersionRE.MatchString(cfg.GoVersion) {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(tcErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range tcErrs {
			fmt.Fprintln(os.Stderr, e)
		}
		return 1
	}

	diags, err := analyzers.Run(fset, files, pkg, info, analyzers.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sciql-lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Category)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
