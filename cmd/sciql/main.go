// Command sciql is an interactive shell and script runner for the
// SciQL engine.
//
// Usage:
//
//	sciql                 # REPL on stdin
//	sciql -f script.sql   # execute a script file
//	sciql -c "SELECT 1"   # execute one statement string
//
// Statements run under a cancelable context: Ctrl-C aborts the
// statement in flight (long scans stop promptly) without killing the
// shell; a second Ctrl-C at the prompt exits. REPL meta commands:
// \d lists catalog objects, \timing toggles per-statement wall-time
// reporting (like psql's), \q quits. EXPLAIN ANALYZE <select> renders
// the executed plan with per-operator statistics.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	file := flag.String("f", "", "execute the statements in this file and exit")
	cmd := flag.String("c", "", "execute this statement string and exit")
	flag.Parse()

	s := core.NewSession()
	if err := s.DeclareStdFunctions(); err != nil {
		fmt.Fprintln(os.Stderr, "init:", err)
		os.Exit(1)
	}

	switch {
	case *cmd != "":
		if err := runScript(s, *cmd); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := runScript(s, string(data)); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		repl(s)
	}
}

// runScript executes sql under an interrupt-cancelable context.
func runScript(s *core.Session, sql string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ds, err := s.RunContext(ctx, sql, nil)
	if err != nil {
		return err
	}
	if ds != nil {
		fmt.Print(ds)
	}
	return nil
}

func repl(s *core.Session) {
	fmt.Println("SciQL shell — arrays as first class citizens. \\d lists objects, \\timing toggles timing, \\q quits, Ctrl-C cancels.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sciql> "
	timing := false
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			switch {
			case trimmed == "\\q":
				return
			case trimmed == "\\d":
				for _, kind := range []string{"ARRAY", "TABLE", "SEQUENCE", "FUNCTION"} {
					for _, n := range s.Engine.Cat.Names(kind) {
						fmt.Printf("%-9s %s\n", strings.ToLower(kind), n)
					}
				}
			case trimmed == "\\timing":
				timing = !timing
				if timing {
					fmt.Println("Timing is on.")
				} else {
					fmt.Println("Timing is off.")
				}
			default:
				fmt.Println("unknown meta command; try \\d, \\timing or \\q")
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "   ...> "
			continue
		}
		prompt = "sciql> "
		sql := buf.String()
		buf.Reset()
		// Each statement batch runs under its own interrupt-cancelable
		// context, so Ctrl-C aborts the query, not the shell.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		start := time.Now()
		ds, err := s.RunContext(ctx, sql, nil)
		elapsed := time.Since(start)
		stop()
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Println("canceled")
		case err != nil:
			fmt.Println("error:", err)
		case ds != nil:
			fmt.Print(ds)
		default:
			fmt.Println("ok")
		}
		if timing && err == nil {
			fmt.Printf("Time: %s\n", elapsed.Round(time.Microsecond))
		}
	}
}
