// Command vaultgen generates synthetic science files in the FITS-lite
// and mSEED-lite formats for data-vault experiments.
//
// Usage:
//
//	vaultgen -kind fits  -out obs.fits  -n 256  -events 100000
//	vaultgen -kind mseed -out day.mseed -samples 3600 -stations 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/vault/fits"
	"repro/internal/vault/mseed"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "fits", "file kind: fits | mseed")
	out := flag.String("out", "", "output path (required)")
	n := flag.Int("n", 256, "fits: image edge length")
	events := flag.Int("events", 100000, "fits: photon events in the table extension")
	samples := flag.Int("samples", 3600, "mseed: samples per station record")
	stations := flag.Int("stations", 3, "mseed: number of station records")
	gaps := flag.Int("gaps", 3, "mseed: gaps injected per record")
	spikes := flag.Int("spikes", 5, "mseed: spikes injected per record")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "vaultgen: -out is required")
		os.Exit(2)
	}
	switch *kind {
	case "fits":
		ls := workload.NewLandsat(1, *n, *seed)
		ev := workload.NewXRayEvents(*events, *n, 5, *seed+1)
		f := &fits.File{Primary: ls.ToFITS(0), Tables: []*fits.BinTable{ev.ToFITSTable()}}
		if err := fits.WriteFile(*out, f); err != nil {
			fmt.Fprintln(os.Stderr, "vaultgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote FITS-lite %s: %dx%d image + %d-event table\n", *out, *n, *n, *events)
	case "mseed":
		var recs []*mseed.Record
		for i := 0; i < *stations; i++ {
			ids, _, _, _, _ := workload.Stations(i+1, *seed)
			w := workload.NewWaveform(ids[i], *samples, 0, 1_000_000, *gaps, *spikes, *seed+int64(i))
			recs = append(recs, w.ToRecord(uint32(i+1)))
		}
		if err := mseed.WriteVolume(*out, recs); err != nil {
			fmt.Fprintln(os.Stderr, "vaultgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote mSEED-lite %s: %d records x %d samples\n", *out, *stations, *samples)
	default:
		fmt.Fprintln(os.Stderr, "vaultgen: unknown kind", *kind)
		os.Exit(2)
	}
}
