// Command sciqlbench runs the paper-reproduction experiment suite
// (DESIGN.md's index F1–F3, A1–A6, B1–B2, C1–C4, X1–X3) once with
// wall-clock timing and prints the results as tables, including the
// correctness checks that validate each experiment's outcome. The Go
// benchmarks in bench_test.go measure the same operations with
// testing.B statistics.
//
// Usage:
//
//	sciqlbench            # full suite (paper-shaped sizes, ~a minute)
//	sciqlbench -quick     # smaller sizes for a fast smoke run
//	sciqlbench -only F1   # run a single experiment id prefix
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/storage"
	"repro/sciql"
)

var (
	quick  = flag.Bool("quick", false, "use smaller sizes")
	only   = flag.String("only", "", "run only experiments whose id has this prefix")
	par    = flag.Int("par", 4, "worker count for the parallel-execution experiments (P1, P3)")
	p3out  = flag.String("p3out", "", "write the P3 measurements as JSON to this file")
	p4out  = flag.String("p4out", "", "write the P4 measurements as JSON to this file")
	p5out  = flag.String("p5out", "", "write the P5 measurements as JSON to this file")
	p6out  = flag.String("p6out", "", "write the P6 measurements as JSON to this file")
	p8out  = flag.String("p8out", "", "write the P8 measurements as JSON to this file")
	p9out  = flag.String("p9out", "", "write the P9 measurements as JSON to this file")
	p10out = flag.String("p10out", "", "write the P10 measurements as JSON to this file")
)

func main() {
	flag.Parse()
	fmt.Println("SciQL reproduction — experiment suite")
	fmt.Println("(paper: Kersten, Nes, Zhang, Ivanova — SciQL, EDBT 2011)")
	fmt.Println()
	runF1()
	runSlabAblation()
	runF2()
	runF3()
	runAML()
	runAstro()
	runSeis()
	runX1()
	runX2()
	runX3()
	runP1()
	runP2()
	runP3()
	runP4()
	runP5()
	runP6()
	runP8()
	runP9()
	runP10()
}

func want(id string) bool {
	return *only == "" || strings.HasPrefix(id, *only)
}

func timeIt(fn func() error) (time.Duration, error) {
	t0 := time.Now()
	err := fn()
	return time.Since(t0), err
}

func fail(id string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
	os.Exit(1)
}

func header(id, title string) {
	fmt.Printf("== %s — %s\n", id, title)
}

func runF1() {
	if !want("F1") {
		return
	}
	n := int64(256)
	if *quick {
		n = 128
	}
	header("F1", fmt.Sprintf("Fig.1 storage schemes (%dx%d, scan/point/slice, µs)", n, n))
	fmt.Printf("%-10s %-9s %10s %10s %10s\n", "scheme", "density", "scan", "point4k", "slice")
	for _, density := range []float64{1.0, 0.1, 0.01} {
		for _, scheme := range []string{storage.SchemeVirtual, storage.SchemeTabular, storage.SchemeDOrder, storage.SchemeSlab} {
			a, err := experiments.MakeGrid(scheme, n, density, 1)
			if err != nil {
				fail("F1", err)
			}
			dScan, _ := timeIt(func() error { experiments.ScanSum(a); return nil })
			dPoint, _ := timeIt(func() error { experiments.PointProbes(a, 4096, 2); return nil })
			dSlice, _ := timeIt(func() error { experiments.SliceSum(a); return nil })
			fmt.Printf("%-10s %-9v %10d %10d %10d\n", scheme, density,
				dScan.Microseconds(), dPoint.Microseconds(), dSlice.Microseconds())
		}
	}
	fmt.Println()
}

func runSlabAblation() {
	if !want("F1") {
		return
	}
	n := int64(256)
	header("F1b", "slab-size ablation (dense scan/point, µs)")
	fmt.Printf("%-10s %10s %10s\n", "slab", "scan", "point4k")
	for _, size := range []int64{8, 16, 64, 256} {
		a, err := experiments.MakeGridSlab(n, size, 1)
		if err != nil {
			fail("F1b", err)
		}
		dScan, _ := timeIt(func() error { experiments.ScanSum(a); return nil })
		dPoint, _ := timeIt(func() error { experiments.PointProbes(a, 4096, 2); return nil })
		fmt.Printf("%-10d %10d %10d\n", size, dScan.Microseconds(), dPoint.Microseconds())
	}
	fmt.Println()
}

func runF2() {
	if !want("F2") {
		return
	}
	n := int64(128)
	header("F2", fmt.Sprintf("Fig.2 array forms (%dx%d, full aggregate, µs)", n, n))
	fmt.Printf("%-10s %10s %12s\n", "form", "aggregate", "scheme")
	for _, form := range []string{"matrix", "stripes", "diagonal", "sparse"} {
		s, err := experiments.MakeForm(form, n)
		if err != nil {
			fail("F2", err)
		}
		var d time.Duration
		d, err = timeIt(func() error { _, e := experiments.FormAggregate(s); return e })
		if err != nil {
			fail("F2", err)
		}
		a, _ := s.Engine.Cat.Array("f")
		fmt.Printf("%-10s %10d %12s\n", form, d.Microseconds(), a.Store.Scheme())
	}
	fmt.Println()
}

func runF3() {
	if !want("F3") {
		return
	}
	n := int64(64)
	s, err := experiments.NewMatrixSession(n)
	if err != nil {
		fail("F3", err)
	}
	header("F3", fmt.Sprintf("Fig.3 tiling (%dx%d matrix, ms)", n, n))
	fmt.Printf("%-6s %14s %8s %14s %8s\n", "tile", "overlapping", "groups", "distinct", "groups")
	for _, t := range []int64{2, 4, 8} {
		var og, dg int
		dOver, err := timeIt(func() error { g, e := experiments.Tiling(s, t, false); og = g; return e })
		if err != nil {
			fail("F3", err)
		}
		dDist, err := timeIt(func() error { g, e := experiments.Tiling(s, t, true); dg = g; return e })
		if err != nil {
			fail("F3", err)
		}
		fmt.Printf("%-6d %14d %8d %14d %8d\n", t, dOver.Milliseconds(), og, dDist.Milliseconds(), dg)
	}
	fmt.Println()
}

func runAML() {
	if !want("A") {
		return
	}
	n := 128
	if *quick {
		n = 64
	}
	a, err := experiments.NewAML(n)
	if err != nil {
		fail("AML", err)
	}
	header("A1–A6", fmt.Sprintf("AML image-analysis suite (%dx%d x 7 channels)", n, n))
	fmt.Printf("%-22s %10s   %s\n", "experiment", "ms", "validation")

	before, clean0, err := a.StripedLineMeans()
	if err != nil {
		fail("A1", err)
	}
	d, err := timeIt(a.Destripe)
	if err != nil {
		fail("A1", err)
	}
	after, _, _ := a.StripedLineMeans()
	fmt.Printf("%-22s %10d   striped mean %.2f -> %.2f (clean %.2f)\n",
		"A1 DESTRIPE", d.Milliseconds(), before, after, clean0)

	var pixels int
	d, err = timeIt(func() error { p, e := a.TVI(n / 4); pixels = p; return e })
	if err != nil {
		fail("A2", err)
	}
	fmt.Printf("%-22s %10d   %d conv+tvi pixels\n", "A2 TVI", d.Milliseconds(), pixels)

	var avg float64
	d, err = timeIt(func() error { v, e := a.NDVI(0); avg = v; return e })
	if err != nil {
		fail("A3", err)
	}
	fmt.Printf("%-22s %10d   mean NDVI %.3f (>0: vegetation signal)\n", "A3 NDVI", d.Milliseconds(), avg)

	var tiles int
	d, err = timeIt(func() error { t, e := a.Mask(); tiles = t; return e })
	if err != nil {
		fail("A4", err)
	}
	fmt.Printf("%-22s %10d   %d tiles kept in [10,100]\n", "A4 MASK", d.Milliseconds(), tiles)

	d, err = timeIt(func() error { return a.Wavelet(0) })
	if err != nil {
		fail("A5", err)
	}
	fmt.Printf("%-22s %10d   %dx%d reconstruction\n", "A5 WAVELET", d.Milliseconds(), n, n/2)

	var sum float64
	d, err = timeIt(func() error { v, e := experiments.MatVec(int64(n)); sum = v; return e })
	if err != nil {
		fail("A6", err)
	}
	fmt.Printf("%-22s %10d   checksum %.0f\n", "A6 MATVEC", d.Milliseconds(), sum)
	fmt.Println()
}

func runAstro() {
	if !want("B") {
		return
	}
	events := 100000
	if *quick {
		events = 20000
	}
	as, err := experiments.NewAstro(events, 256)
	if err != nil {
		fail("B1", err)
	}
	header("B1–B2", fmt.Sprintf("astronomy (%d photon events, 256x256 detector)", events))
	fmt.Printf("%-22s %10s   %s\n", "experiment", "ms", "validation")
	var total int64
	d, err := timeIt(func() error { t, e := as.Binning(0); total = t; return e })
	if err != nil {
		fail("B1", err)
	}
	fmt.Printf("%-22s %10d   %d events binned (all preserved)\n", "B1 binning", d.Milliseconds(), total)
	if err := as.PrepareImage(); err != nil {
		fail("B1", err)
	}
	var bins int
	d, err = timeIt(func() error { b, e := as.Rebin(); bins = b; return e })
	if err != nil {
		fail("B1", err)
	}
	fmt.Printf("%-22s %10d   %d super-bins (16x re-binning)\n", "B1 rebin-16x", d.Milliseconds(), bins)

	ws, err := experiments.NewWCSSession(128)
	if err != nil {
		fail("B2", err)
	}
	d, err = timeIt(func() error { return experiments.WCS(ws) })
	if err != nil {
		fail("B2", err)
	}
	fmt.Printf("%-22s %10d   128x128 pixel->world transform\n", "B2 WCS", d.Milliseconds())
	fmt.Println()
}

func runSeis() {
	if !want("C") {
		return
	}
	n := 20000
	if *quick {
		n = 5000
	}
	se, err := experiments.NewSeis(n, 20, 30)
	if err != nil {
		fail("C", err)
	}
	header("C1–C4", fmt.Sprintf("seismology (%d samples, 20 gaps, 30 spikes)", n))
	fmt.Printf("%-22s %10s   %s\n", "experiment", "ms", "validation")
	var cnt int64
	d, err := timeIt(func() error { c, e := se.Retrieve(); cnt = c; return e })
	if err != nil {
		fail("C1", err)
	}
	fmt.Printf("%-22s %10d   %d samples in window\n", "C1 retrieval", d.Milliseconds(), cnt)
	var gaps int
	d, err = timeIt(func() error { g, e := se.Gaps(); gaps = g; return e })
	if err != nil {
		fail("C2", err)
	}
	fmt.Printf("%-22s %10d   %d/%d injected gaps found\n", "C2 gap detection",
		d.Milliseconds(), gaps, len(se.W.GapStarts))
	var spikes int
	d, err = timeIt(func() error { s, e := se.Spikes(); spikes = s; return e })
	if err != nil {
		fail("C3", err)
	}
	fmt.Printf("%-22s %10d   %d jump points (2 per spike, %d spikes)\n", "C3 spike detection",
		d.Milliseconds(), spikes, len(se.W.SpikeTimes))
	mse, err := experiments.NewSeis(5000, 20, 30)
	if err != nil {
		fail("C4", err)
	}
	var rows int
	d, err = timeIt(func() error { r, e := mse.MovAvg(); rows = r; return e })
	if err != nil {
		fail("C4", err)
	}
	fmt.Printf("%-22s %10d   %d moving-average rows (5000 samples)\n", "C4 moving average",
		d.Milliseconds(), rows)
	fmt.Println()
}

func runX1() {
	if !want("X1") {
		return
	}
	n := int64(48)
	s, err := experiments.NewMatrixSession(n)
	if err != nil {
		fail("X1", err)
	}
	if err := experiments.ConvRelationalSetup(s); err != nil {
		fail("X1", err)
	}
	header("X1", "structural grouping vs relational self-join (4-neighbor convolution)")
	dT, err := timeIt(func() error { _, e := experiments.ConvTiling(s); return e })
	if err != nil {
		fail("X1", err)
	}
	dR, err := timeIt(func() error { _, e := experiments.ConvRelational(s); return e })
	if err != nil {
		fail("X1", err)
	}
	fmt.Printf("sciql tiling:        %8.1f ms\n", float64(dT.Microseconds())/1000)
	fmt.Printf("relational self-join:%8.1f ms\n", float64(dR.Microseconds())/1000)
	fmt.Printf("speedup: %.2fx (paper's claim: structural grouping wins)\n\n",
		float64(dR.Nanoseconds())/float64(dT.Nanoseconds()))
}

func runX2() {
	if !want("X2") {
		return
	}
	v, err := experiments.NewVaultFixture(256, 50000)
	if err != nil {
		fail("X2", err)
	}
	defer v.Close()
	header("X2", "data-vault lazy metadata access (FITS COUNT)")
	var n1, n2 int64
	dLazy, err := timeIt(func() error { c, e := v.LazyCount(); n1 = c; return e })
	if err != nil {
		fail("X2", err)
	}
	dFull, err := timeIt(func() error { c, e := v.FullCount(); n2 = c; return e })
	if err != nil {
		fail("X2", err)
	}
	fmt.Printf("header-only COUNT:   %8.2f ms  (count=%d)\n", float64(dLazy.Microseconds())/1000, n1)
	fmt.Printf("full ingest + COUNT: %8.2f ms  (count=%d)\n", float64(dFull.Microseconds())/1000, n2)
	fmt.Printf("ratio: %.0fx (paper §2.1: metadata from the file header)\n\n",
		float64(dFull.Nanoseconds())/float64(dLazy.Nanoseconds()))
}

func runX3() {
	if !want("X3") {
		return
	}
	m, err := experiments.NewMarshalFixture(512)
	if err != nil {
		fail("X3", err)
	}
	header("X3", "black-box marshaling (512x512 to row-major library buffer)")
	dA, err := timeIt(func() error { _, e := m.MarshalAligned(); return e })
	if err != nil {
		fail("X3", err)
	}
	dR, err := timeIt(func() error { _, e := m.MarshalRecast(); return e })
	if err != nil {
		fail("X3", err)
	}
	fmt.Printf("aligned (row-major source):  %8.2f ms\n", float64(dA.Microseconds())/1000)
	fmt.Printf("recast (col-major source):   %8.2f ms\n", float64(dR.Microseconds())/1000)
	fmt.Printf("recast overhead: %.1fx (paper §6.2: 'potentially expensive')\n\n",
		float64(dR.Nanoseconds())/float64(dA.Nanoseconds()))
}

func runP1() {
	if !want("P1") {
		return
	}
	n := 128
	tile := 4
	if *quick {
		n = 64
	}
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	header("P1", fmt.Sprintf("morsel-driven parallel tiled aggregation (%dx%d, %dx%d tiles, %d workers, GOMAXPROCS=%d)",
		n, n, tile, tile, workers, runtime.GOMAXPROCS(0)))
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(
		`CREATE ARRAY pmatrix (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n))
	db.MustExec(`UPDATE pmatrix SET v = x * 31 + y`)
	q := fmt.Sprintf(`SELECT [x], [y], AVG(v) FROM pmatrix GROUP BY DISTINCT pmatrix[x:x+%d][y:y+%d]`, tile, tile)
	if plan, err := db.Explain(q); err == nil {
		fmt.Print(plan)
	}
	var serial, parallel string
	dS, err := timeIt(func() error {
		db.Parallelism(1)
		rs, e := db.Query(q)
		if e == nil {
			serial = rs.String()
		}
		return e
	})
	if err != nil {
		fail("P1", err)
	}
	dP, err := timeIt(func() error {
		db.Parallelism(workers)
		rs, e := db.Query(q)
		if e == nil {
			parallel = rs.String()
		}
		return e
	})
	if err != nil {
		fail("P1", err)
	}
	if serial != parallel {
		fail("P1", fmt.Errorf("parallel result differs from serial"))
	}
	fmt.Printf("serial (1 worker):    %8.1f ms\n", float64(dS.Microseconds())/1000)
	fmt.Printf("parallel (%d workers):%8.1f ms\n", workers, float64(dP.Microseconds())/1000)
	fmt.Printf("speedup: %.2fx (identical results; scaling requires >= %d cores)\n\n",
		float64(dS.Nanoseconds())/float64(dP.Nanoseconds()), workers)
}

// runP2 quantifies the prepared-statement / plan-cache win: the same
// parameterized SELECT re-executed many times as (a) ad-hoc text with
// the statement cache disabled (parse + plan every call), (b) ad-hoc
// text with the default LRU statement cache, and (c) a prepared
// statement. (b) and (c) skip parse+plan after the first call.
func runP2() {
	if !want("P2") {
		return
	}
	n, iters := int64(4), 5000
	if *quick {
		iters = 1000
	}
	header("P2", fmt.Sprintf("prepared statements vs ad-hoc text (%dx%d array, %d re-executions)", n, n, iters))
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(
		`CREATE ARRAY bench (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n))
	db.MustExec(`UPDATE bench SET v = x * 31 + y`)
	// The planner gates the morsel-driven path, so with parallelism
	// configured every fresh AST pays fold+compile+pushdown+prune; the
	// array is small enough that execution itself stays lean. Prepared
	// statements (and the LRU) skip parse and that planning entirely.
	db.Parallelism(4)
	q := `SELECT x, y, v, SQRT(v) + POWER(v, 0.25) AS s,
	        CASE WHEN MOD(x + y, 2) = 0 THEN v * 2.0 ELSE v / 2.0 END AS w
	      FROM bench
	      WHERE x >= ?x AND x < ?x + 8 AND y >= 0 AND y < 16
	        AND v > ?lo AND MOD(x * 31 + y, 7) <> 3
	        AND (v < 1000000 OR SQRT(v + 1) > 0 OR POWER(v, 2) < 100000000)`

	run := func(exec func(i int) error) time.Duration {
		d, err := timeIt(func() error {
			for i := 0; i < iters; i++ {
				if err := exec(i); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fail("P2", err)
		}
		return d
	}
	args := func(i int) []sciql.Arg {
		return []sciql.Arg{sciql.Int("x", int64(i)%4), sciql.Float("lo", 1)}
	}

	db.SetPlanCacheSize(0)
	dCold := run(func(i int) error { _, err := db.Query(q, args(i)...); return err })
	db.SetPlanCacheSize(256)
	dCached := run(func(i int) error { _, err := db.Query(q, args(i)...); return err })
	st, err := db.Prepare(q)
	if err != nil {
		fail("P2", err)
	}
	dPrep := run(func(i int) error { _, err := st.Query(args(i)...); return err })

	perCall := func(d time.Duration) float64 { return float64(d.Microseconds()) / float64(iters) }
	fmt.Printf("ad-hoc, cache off  (parse+plan each): %8.1f us/exec\n", perCall(dCold))
	fmt.Printf("ad-hoc, LRU cache  (plan reused):     %8.1f us/exec\n", perCall(dCached))
	fmt.Printf("prepared statement (plan reused):     %8.1f us/exec\n", perCall(dPrep))
	fmt.Printf("prepared speedup over uncached ad-hoc: %.2fx\n\n",
		float64(dCold.Nanoseconds())/float64(dPrep.Nanoseconds()))
}

// p3Result is the recorded shape of the P3 experiment: the chunked
// parallel scan and runtime projection pruning. -p3out writes the
// latest run (truncating); committing BENCH_P3.json per change keeps
// the perf trajectory in git history.
type p3Result struct {
	Experiment         string  `json:"experiment"`
	Cells              int64   `json:"cells"`
	Workers            int     `json:"workers"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	SerialMs           float64 `json:"serial_scan_ms"`
	ParallelMs         float64 `json:"parallel_scan_ms"`
	ScanSpeedup        float64 `json:"scan_speedup"`
	FullProjectionMs   float64 `json:"full_projection_ms"`
	PrunedProjectionMs float64 `json:"pruned_projection_ms"`
	PruneSpeedup       float64 `json:"prune_speedup"`
	Rows               int     `json:"result_rows"`
}

// runP3 measures the chunked parallel array scan: a filter-heavy query
// over a >=1M-cell array, serial vs chunk-parallel (the scan itself is
// the morsel domain; filter+projection run per chunk inside it), and a
// full- vs pruned-projection scan (unreferenced attribute columns are
// never materialized). Results optionally land in -p3out as JSON.
func runP3() {
	if !want("P3") {
		return
	}
	n := int64(1024)
	if *quick {
		n = 512
	}
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	header("P3", fmt.Sprintf("chunked parallel array scan + projection pruning (%dx%d = %d cells, %d workers, GOMAXPROCS=%d)",
		n, n, n*n, workers, runtime.GOMAXPROCS(0)))
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY bigscan (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		a FLOAT DEFAULT 1.0, b FLOAT DEFAULT 2.0, c FLOAT DEFAULT 3.0)`, n, n))
	filterQ := `SELECT x, y, a FROM bigscan WHERE MOD(x * 31 + y, 7) < 3 AND MOD(x + y, 5) <> 0 AND a > 0`
	var serialRows, parRows int
	dS, err := timeIt(func() error {
		db.Parallelism(1)
		rs, e := db.Query(filterQ)
		if e == nil {
			serialRows = rs.NumRows()
		}
		return e
	})
	if err != nil {
		fail("P3", err)
	}
	dP, err := timeIt(func() error {
		db.Parallelism(workers)
		rs, e := db.Query(filterQ)
		if e == nil {
			parRows = rs.NumRows()
		}
		return e
	})
	if err != nil {
		fail("P3", err)
	}
	if serialRows != parRows {
		fail("P3", fmt.Errorf("parallel scan returned %d rows, serial %d", parRows, serialRows))
	}
	fullQ := `SELECT x, y, a, b, c FROM bigscan WHERE MOD(x * 31 + y, 7) = 0`
	prunedQ := `SELECT x, y, a FROM bigscan WHERE MOD(x * 31 + y, 7) = 0`
	dFull, err := timeIt(func() error { _, e := db.Query(fullQ); return e })
	if err != nil {
		fail("P3", err)
	}
	dPruned, err := timeIt(func() error { _, e := db.Query(prunedQ); return e })
	if err != nil {
		fail("P3", err)
	}
	res := p3Result{
		Experiment:         "P3",
		Cells:              n * n,
		Workers:            workers,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		SerialMs:           float64(dS.Microseconds()) / 1000,
		ParallelMs:         float64(dP.Microseconds()) / 1000,
		ScanSpeedup:        float64(dS.Nanoseconds()) / float64(dP.Nanoseconds()),
		FullProjectionMs:   float64(dFull.Microseconds()) / 1000,
		PrunedProjectionMs: float64(dPruned.Microseconds()) / 1000,
		PruneSpeedup:       float64(dFull.Nanoseconds()) / float64(dPruned.Nanoseconds()),
		Rows:               serialRows,
	}
	fmt.Printf("serial scan (1 worker):      %8.1f ms  (%d rows)\n", res.SerialMs, serialRows)
	fmt.Printf("chunked scan (%d workers):   %8.1f ms\n", workers, res.ParallelMs)
	fmt.Printf("scan speedup: %.2fx (scaling requires >= %d cores)\n", res.ScanSpeedup, workers)
	fmt.Printf("full projection (5 cols):    %8.1f ms\n", res.FullProjectionMs)
	fmt.Printf("pruned projection (3 cols):  %8.1f ms\n", res.PrunedProjectionMs)
	fmt.Printf("pruning speedup: %.2fx (unused attribute columns never materialize)\n\n", res.PruneSpeedup)
	if *p3out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail("P3", err)
		}
		if err := os.WriteFile(*p3out, append(buf, '\n'), 0o644); err != nil {
			fail("P3", err)
		}
		fmt.Printf("(P3 measurements written to %s)\n\n", *p3out)
	}
}

// p4Result is the recorded shape of the P4 experiment: vectorized
// (bulk-kernel) execution vs the tree-walking interpreter on the P3
// workload shape. -p4out writes the latest run (truncating);
// committing BENCH_P4.json per change keeps the perf trajectory in
// git history.
type p4Result struct {
	Experiment         string  `json:"experiment"`
	Cells              int64   `json:"cells"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	InterpretedMs      float64 `json:"interpreted_scan_ms"`
	VectorizedMs       float64 `json:"vectorized_scan_ms"`
	Speedup            float64 `json:"vectorization_speedup"`
	FullProjectionMs   float64 `json:"vectorized_full_projection_ms"`
	PrunedProjectionMs float64 `json:"vectorized_pruned_projection_ms"`
	PruneSpeedup       float64 `json:"prune_speedup"`
	Rows               int     `json:"result_rows"`
}

// runP4 measures vectorized execution: the P3 filter-heavy 1M-cell
// scan single-core with the expression interpreter vs the compiled
// kernel pipeline (byte-identical results enforced), plus the full- vs
// pruned-projection comparison under vectorization.
func runP4() {
	if !want("P4") {
		return
	}
	n := int64(1024)
	if *quick {
		n = 512
	}
	header("P4", fmt.Sprintf("vectorized execution: BAT kernels vs tree-walking interpreter (%dx%d = %d cells, single core)",
		n, n, n*n))
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY vecscan (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		a FLOAT DEFAULT 1.0, b FLOAT DEFAULT 2.0, c FLOAT DEFAULT 3.0)`, n, n))
	filterQ := `SELECT x, y, a FROM vecscan WHERE MOD(x * 31 + y, 7) < 3 AND MOD(x + y, 5) <> 0 AND a > 0`
	db.Parallelism(1)
	var interpRows, vecRows int
	var interpOut, vecOut string
	dI, err := timeIt(func() error {
		db.Vectorize(false)
		rs, e := db.Query(filterQ)
		if e == nil {
			interpRows, interpOut = rs.NumRows(), rs.String()
		}
		return e
	})
	if err != nil {
		fail("P4", err)
	}
	dV, err := timeIt(func() error {
		db.Vectorize(true)
		rs, e := db.Query(filterQ)
		if e == nil {
			vecRows, vecOut = rs.NumRows(), rs.String()
		}
		return e
	})
	if err != nil {
		fail("P4", err)
	}
	if interpRows != vecRows || interpOut != vecOut {
		fail("P4", fmt.Errorf("vectorized result differs from interpreter (%d vs %d rows)", vecRows, interpRows))
	}
	fullQ := `SELECT x, y, a, b, c FROM vecscan WHERE MOD(x * 31 + y, 7) = 0`
	prunedQ := `SELECT x, y, a FROM vecscan WHERE MOD(x * 31 + y, 7) = 0`
	dFull, err := timeIt(func() error { _, e := db.Query(fullQ); return e })
	if err != nil {
		fail("P4", err)
	}
	dPruned, err := timeIt(func() error { _, e := db.Query(prunedQ); return e })
	if err != nil {
		fail("P4", err)
	}
	res := p4Result{
		Experiment:         "P4",
		Cells:              n * n,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		InterpretedMs:      float64(dI.Microseconds()) / 1000,
		VectorizedMs:       float64(dV.Microseconds()) / 1000,
		Speedup:            float64(dI.Nanoseconds()) / float64(dV.Nanoseconds()),
		FullProjectionMs:   float64(dFull.Microseconds()) / 1000,
		PrunedProjectionMs: float64(dPruned.Microseconds()) / 1000,
		PruneSpeedup:       float64(dFull.Nanoseconds()) / float64(dPruned.Nanoseconds()),
		Rows:               interpRows,
	}
	fmt.Printf("interpreted scan (row-at-a-time):  %8.1f ms  (%d rows)\n", res.InterpretedMs, interpRows)
	fmt.Printf("vectorized scan (BAT kernels):     %8.1f ms\n", res.VectorizedMs)
	fmt.Printf("vectorization speedup: %.2fx single-core (the paper's column-at-a-time argument)\n", res.Speedup)
	fmt.Printf("vectorized full projection (5 cols):   %8.1f ms\n", res.FullProjectionMs)
	fmt.Printf("vectorized pruned projection (3 cols): %8.1f ms\n", res.PrunedProjectionMs)
	fmt.Printf("pruning speedup under vectorization: %.2fx\n\n", res.PruneSpeedup)
	if *p4out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail("P4", err)
		}
		if err := os.WriteFile(*p4out, append(buf, '\n'), 0o644); err != nil {
			fail("P4", err)
		}
		fmt.Printf("(P4 measurements written to %s)\n\n", *p4out)
	}
}

// p5Result is the recorded shape of the P5 experiment: concurrent
// connection scaling on the 1M-cell filter scan — the same total work
// (4 scans) done by one connection sequentially vs 4 connections
// concurrently over the shared, versioned catalog. -p5out writes the
// latest run (truncating); committing BENCH_P5.json per change keeps
// the trajectory in git history.
type p5Result struct {
	Experiment      string  `json:"experiment"`
	Cells           int64   `json:"cells"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Scans           int     `json:"scans"`
	SequentialMs    float64 `json:"one_conn_sequential_ms"`
	ConcurrentMs    float64 `json:"four_conns_concurrent_ms"`
	ConnScaling     float64 `json:"conn_scaling"`
	RowsPerScan     int     `json:"rows_per_scan"`
	SnapshotsStable bool    `json:"snapshots_stable_under_writer"`
}

// runP5 measures concurrent connections: 4 full filter scans executed
// back-to-back on one sciql.Conn vs fanned out over 4 Conns, then a
// consistency probe — readers streaming while a transaction commits
// must each see exactly one version. Connection scaling needs >= 4
// cores to show; single-core containers record the overhead floor.
func runP5() {
	if !want("P5") {
		return
	}
	n := int64(1024)
	if *quick {
		n = 256
	}
	header("P5", fmt.Sprintf("concurrent connections: 1 vs 4 sessions on the %dx%d = %d cell scan", n, n, n*n))
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY conc (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		a FLOAT DEFAULT 1.0, b FLOAT DEFAULT 2.0)`, n, n))
	const scans = 4
	q := `SELECT x, y, a FROM conc WHERE MOD(x * 31 + y, 7) < 3`

	drain := func(c *sciql.Conn) (int, error) {
		rows, err := c.QueryContext(context.Background(), q)
		if err != nil {
			return 0, err
		}
		defer rows.Close()
		cnt := 0
		for rows.Next() {
			cnt++
		}
		return cnt, rows.Err()
	}

	one, err := db.Conn(context.Background())
	if err != nil {
		fail("P5", err)
	}
	var rowsPerScan int
	dSeq, err := timeIt(func() error {
		for i := 0; i < scans; i++ {
			cnt, err := drain(one)
			if err != nil {
				return err
			}
			rowsPerScan = cnt
		}
		return nil
	})
	if err != nil {
		fail("P5", err)
	}

	conns := make([]*sciql.Conn, scans)
	for i := range conns {
		if conns[i], err = db.Conn(context.Background()); err != nil {
			fail("P5", err)
		}
	}
	dConc, err := timeIt(func() error {
		var wg sync.WaitGroup
		errCh := make(chan error, scans)
		for _, c := range conns {
			wg.Add(1)
			go func(c *sciql.Conn) {
				defer wg.Done()
				if cnt, err := drain(c); err != nil {
					errCh <- err
				} else if cnt != rowsPerScan {
					errCh <- fmt.Errorf("concurrent scan saw %d rows, want %d", cnt, rowsPerScan)
				}
			}(c)
		}
		wg.Wait()
		close(errCh)
		return <-errCh
	})
	if err != nil {
		fail("P5", err)
	}

	// Consistency probe: a reader streams while a transaction rewrites
	// every cell; the drained result must be one version, not a tear.
	stable := true
	probe, err := db.Conn(context.Background())
	if err != nil {
		fail("P5", err)
	}
	rows, err := probe.QueryContext(context.Background(), `SELECT a FROM conc`)
	if err != nil {
		fail("P5", err)
	}
	if !rows.Next() {
		fail("P5", fmt.Errorf("no rows from probe scan"))
	}
	writer, err := db.Conn(context.Background())
	if err != nil {
		fail("P5", err)
	}
	tx, err := writer.Begin()
	if err != nil {
		fail("P5", err)
	}
	if _, err := tx.Exec(`UPDATE conc SET a = 9.0`); err != nil {
		fail("P5", err)
	}
	if err := tx.Commit(); err != nil {
		fail("P5", err)
	}
	var v sciql.Value
	if err := rows.Scan(&v); err != nil {
		fail("P5", err)
	}
	seen := v.AsFloat()
	for rows.Next() {
		if err := rows.Scan(&v); err != nil {
			fail("P5", err)
		}
		if v.AsFloat() != seen {
			stable = false
		}
	}
	rows.Close()
	if !stable {
		fail("P5", fmt.Errorf("open cursor observed a mix of versions (snapshot tear)"))
	}

	res := p5Result{
		Experiment:      "P5",
		Cells:           n * n,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Scans:           scans,
		SequentialMs:    float64(dSeq.Microseconds()) / 1000,
		ConcurrentMs:    float64(dConc.Microseconds()) / 1000,
		ConnScaling:     float64(dSeq.Nanoseconds()) / float64(dConc.Nanoseconds()),
		RowsPerScan:     rowsPerScan,
		SnapshotsStable: stable,
	}
	fmt.Printf("%d scans, 1 conn sequential:   %8.1f ms  (%d rows/scan)\n", scans, res.SequentialMs, rowsPerScan)
	fmt.Printf("%d scans, %d conns concurrent: %8.1f ms\n", scans, scans, res.ConcurrentMs)
	fmt.Printf("connection scaling: %.2fx (needs >= %d cores to show; snapshot reads never block on the writer)\n", res.ConnScaling, scans)
	fmt.Printf("snapshot stability under a committing writer: %v\n\n", res.SnapshotsStable)
	if *p5out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail("P5", err)
		}
		if err := os.WriteFile(*p5out, append(buf, '\n'), 0o644); err != nil {
			fail("P5", err)
		}
		fmt.Printf("(P5 measurements written to %s)\n\n", *p5out)
	}
}

// p6Result is the recorded shape of the P6 experiment: the cost of
// observability. The same 1M-cell vectorized filter scan runs with
// telemetry unarmed (counters only), with the trace/slow-query path
// armed, and under EXPLAIN ANALYZE (full per-operator profiling), plus
// the plan-cache hit rate a prepared workload achieves. -p6out writes
// the latest run (truncating); committing BENCH_P6.json per change
// keeps the overhead trajectory in git history.
type p6Result struct {
	Experiment         string  `json:"experiment"`
	Cells              int64   `json:"cells"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	Iterations         int     `json:"iterations_per_mode"`
	UnarmedMs          float64 `json:"unarmed_scan_ms"`
	ArmedMs            float64 `json:"slow_log_armed_scan_ms"`
	ArmedOverheadPct   float64 `json:"slow_log_overhead_pct"`
	AnalyzeMs          float64 `json:"explain_analyze_ms"`
	AnalyzeOverheadPct float64 `json:"explain_analyze_overhead_pct"`
	Rows               int     `json:"result_rows"`
	ScanCellsPerQuery  int64   `json:"scan_cells_per_query"`
	ScanRowsPerQuery   int64   `json:"scan_rows_per_query"`
	SlowQueriesLogged  int64   `json:"slow_queries_logged"`
	PreparedExecs      int     `json:"prepared_execs"`
	PlanCacheHits      int64   `json:"plan_cache_hits"`
	PlanCacheMisses    int64   `json:"plan_cache_misses"`
	PlanCacheHitRate   float64 `json:"plan_cache_hit_rate"`
}

// runP6 measures what telemetry costs: the P4 vectorized filter scan
// with (a) nothing armed — the always-on counters are the only cost,
// (b) the slow-query log armed with a 1ns threshold so every query
// traces and logs, and (c) EXPLAIN ANALYZE, which arms the full
// per-operator profile. Counter deltas from db.Metrics() validate the
// instrumentation (cells visited, rows produced, slow queries logged),
// and a prepared-statement workload reports the plan-cache hit rate.
func runP6() {
	if !want("P6") {
		return
	}
	n := int64(1024)
	iters := 5
	if *quick {
		n = 512
		iters = 3
	}
	header("P6", fmt.Sprintf("telemetry overhead: unarmed vs slow-log armed vs EXPLAIN ANALYZE (%dx%d = %d cells, vectorized)",
		n, n, n*n))
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY telscan (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		a FLOAT DEFAULT 1.0, b FLOAT DEFAULT 2.0, c FLOAT DEFAULT 3.0)`, n, n))
	filterQ := `SELECT x, y, a FROM telscan WHERE MOD(x * 31 + y, 7) < 3 AND MOD(x + y, 5) <> 0 AND a > 0`
	db.Parallelism(1)
	db.Vectorize(true)

	// best-of-iters wall time for one run mode; all modes return the
	// same row count or the experiment fails.
	var rowsSeen int
	measure := func(q string) time.Duration {
		best := time.Duration(0)
		for i := 0; i < iters; i++ {
			var cnt int
			d, err := timeIt(func() error {
				rs, e := db.Query(q)
				if e == nil {
					cnt = rs.NumRows()
				}
				return e
			})
			if err != nil {
				fail("P6", err)
			}
			if q == filterQ {
				if rowsSeen == 0 {
					rowsSeen = cnt
				} else if cnt != rowsSeen {
					fail("P6", fmt.Errorf("row count drifted: %d vs %d", cnt, rowsSeen))
				}
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	before := db.Metrics()
	dUnarmed := measure(filterQ)
	after := db.Metrics()
	cellsPerQ := (after["scan_cells_total"] - before["scan_cells_total"]) / int64(iters)
	rowsPerQ := (after["scan_rows_total"] - before["scan_rows_total"]) / int64(iters)

	// Arm the slow-query log so every statement crosses the threshold:
	// the armed path pays trace events, row accounting, and a log line.
	db.SetSlowQueryThreshold(time.Nanosecond, io.Discard)
	dArmed := measure(filterQ)
	slowLogged := db.Metrics()["slow_query_total"]
	db.SetSlowQueryThreshold(0, nil)

	dAnalyze := measure("EXPLAIN ANALYZE " + filterQ)

	// Plan-cache hit rate under a prepared workload: the first execution
	// plans, the rest hit the memoized decision.
	preparedExecs := 100
	st, err := db.Prepare(filterQ + ` AND x < 64`)
	if err != nil {
		fail("P6", err)
	}
	before = db.Metrics()
	for i := 0; i < preparedExecs; i++ {
		if _, err := st.Query(); err != nil {
			fail("P6", err)
		}
	}
	after = db.Metrics()
	hits := after["plan_cache_hit_total"] - before["plan_cache_hit_total"]
	misses := after["plan_cache_miss_total"] - before["plan_cache_miss_total"]
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}

	pct := func(d time.Duration) float64 {
		return (float64(d.Nanoseconds())/float64(dUnarmed.Nanoseconds()) - 1) * 100
	}
	res := p6Result{
		Experiment:         "P6",
		Cells:              n * n,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Iterations:         iters,
		UnarmedMs:          float64(dUnarmed.Microseconds()) / 1000,
		ArmedMs:            float64(dArmed.Microseconds()) / 1000,
		ArmedOverheadPct:   pct(dArmed),
		AnalyzeMs:          float64(dAnalyze.Microseconds()) / 1000,
		AnalyzeOverheadPct: pct(dAnalyze),
		Rows:               rowsSeen,
		ScanCellsPerQuery:  cellsPerQ,
		ScanRowsPerQuery:   rowsPerQ,
		SlowQueriesLogged:  slowLogged,
		PreparedExecs:      preparedExecs,
		PlanCacheHits:      hits,
		PlanCacheMisses:    misses,
		PlanCacheHitRate:   hitRate,
	}
	fmt.Printf("unarmed (counters only):       %8.1f ms  (%d rows; %d cells scanned/query)\n",
		res.UnarmedMs, rowsSeen, cellsPerQ)
	fmt.Printf("slow-log armed (every query):  %8.1f ms  (%+.1f%%; %d slow queries logged)\n",
		res.ArmedMs, res.ArmedOverheadPct, slowLogged)
	fmt.Printf("EXPLAIN ANALYZE (profiled):    %8.1f ms  (%+.1f%%)\n", res.AnalyzeMs, res.AnalyzeOverheadPct)
	fmt.Printf("plan-cache hit rate, %d prepared execs: %.1f%% (%d hits / %d misses)\n\n",
		preparedExecs, hitRate*100, hits, misses)
	if *p6out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail("P6", err)
		}
		if err := os.WriteFile(*p6out, append(buf, '\n'), 0o644); err != nil {
			fail("P6", err)
		}
		fmt.Printf("(P6 measurements written to %s)\n\n", *p6out)
	}
}

// p8SkipPoint is one selectivity point of the P8 chunk-skip sweep.
type p8SkipPoint struct {
	SelectivityPct int     `json:"selectivity_pct"`
	Rows           int     `json:"rows"`
	SkipOffMs      float64 `json:"skip_off_ms"`
	SkipOnMs       float64 `json:"skip_on_ms"`
	Speedup        float64 `json:"skip_speedup"`
	ChunksSkipped  int64   `json:"chunks_skipped"`
}

// p8Result is the recorded shape of the P8 experiment: zone-map chunk
// skipping on the vectorized 1M-cell filter scan at three
// selectivities, and the partitioned hash join at 1 vs 4 workers.
// -p8out writes the latest run (truncating); committing BENCH_P8.json
// per change keeps the trajectory in git history.
type p8Result struct {
	Experiment     string        `json:"experiment"`
	Cells          int64         `json:"cells"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	SkipScan       []p8SkipPoint `json:"skip_scan"`
	JoinRows       int           `json:"join_rows"`
	JoinSerialMs   float64       `json:"join_serial_ms"`
	JoinParallelMs float64       `json:"join_parallel_ms"`
	JoinWorkers    int           `json:"join_workers"`
	JoinSpeedup    float64       `json:"join_speedup"`
}

// runP8 measures statistics-driven execution. Part one: the P4
// vectorized filter scan over a monotone attribute (v = x*n + y, so
// chunk zone maps are tight) with chunk skipping off vs on at 1%, 34%
// and 100% selectivity — at 100% every chunk overlaps the predicate
// and skipping must cost nothing. Part two: the partitioned hash join
// of the 1M-cell array against a small array, serial vs morsel-driven
// (byte-identical results enforced).
func runP8() {
	if !want("P8") {
		return
	}
	n := int64(1024)
	iters := 3
	if *quick {
		n = 512
	}
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	header("P8", fmt.Sprintf("zone-map chunk skipping + partitioned hash join (%dx%d = %d cells, GOMAXPROCS=%d)",
		n, n, n*n, runtime.GOMAXPROCS(0)))
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY zscan (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		v FLOAT DEFAUL`+`T 0.0, w FLOAT DEFAULT 1.0)`, n, n))
	db.MustExec(`UPDATE zscan SET v = x * ` + fmt.Sprint(n) + ` + y`)
	db.Parallelism(1)
	db.Vectorize(true)

	cells := n * n
	best := func(q string) (time.Duration, int) {
		bd, rows := time.Duration(0), 0
		for i := 0; i < iters; i++ {
			var cnt int
			d, err := timeIt(func() error {
				rs, e := db.Query(q)
				if e == nil {
					cnt = rs.NumRows()
				}
				return e
			})
			if err != nil {
				fail("P8", err)
			}
			if bd == 0 || d < bd {
				bd = d
			}
			rows = cnt
		}
		return bd, rows
	}

	res := p8Result{Experiment: "P8", Cells: cells, GOMAXPROCS: runtime.GOMAXPROCS(0), JoinWorkers: workers}
	fmt.Printf("%-6s %12s %12s %9s %15s %10s\n", "sel", "skip off ms", "skip on ms", "speedup", "chunks skipped", "rows")
	for _, pctSel := range []int{1, 34, 100} {
		threshold := cells * int64(pctSel) / 100
		q := fmt.Sprintf(`SELECT x, y, v FROM zscan WHERE v < %d`, threshold)
		db.ChunkSkip(false)
		dOff, rowsOff := best(q)
		db.ChunkSkip(true)
		skippedBefore := db.Metrics()["scan_chunks_skipped_total"]
		dOn, rowsOn := best(q)
		skipped := (db.Metrics()["scan_chunks_skipped_total"] - skippedBefore) / int64(iters)
		if rowsOn != rowsOff {
			fail("P8", fmt.Errorf("skip on returned %d rows, off %d", rowsOn, rowsOff))
		}
		pt := p8SkipPoint{
			SelectivityPct: pctSel,
			Rows:           rowsOn,
			SkipOffMs:      float64(dOff.Microseconds()) / 1000,
			SkipOnMs:       float64(dOn.Microseconds()) / 1000,
			Speedup:        float64(dOff.Nanoseconds()) / float64(dOn.Nanoseconds()),
			ChunksSkipped:  skipped,
		}
		res.SkipScan = append(res.SkipScan, pt)
		fmt.Printf("%-6s %12.1f %12.1f %8.2fx %15d %10d\n",
			fmt.Sprintf("%d%%", pctSel), pt.SkipOffMs, pt.SkipOnMs, pt.Speedup, pt.ChunksSkipped, pt.Rows)
	}

	// Partitioned hash join: the 1M-cell array probes against a small
	// build side; the morsel pool fans key extraction, partition build
	// and probe.
	db.MustExec(`CREATE ARRAY zdim (x INTEGER DIMENSION[64], y INTEGER DIMENSION[64], s FLOAT DEFAULT 3.0)`)
	joinQ := `SELECT l.x, l.y, (l.v + r.s) AS e FROM zscan AS l JOIN zdim AS r ON l.x = r.x AND l.y = r.y`
	var serialOut, parOut string
	db.Parallelism(1)
	dJS, err := timeIt(func() error {
		rs, e := db.Query(joinQ)
		if e == nil {
			serialOut = rs.String()
			res.JoinRows = rs.NumRows()
		}
		return e
	})
	if err != nil {
		fail("P8", err)
	}
	db.Parallelism(workers)
	dJP, err := timeIt(func() error {
		rs, e := db.Query(joinQ)
		if e == nil {
			parOut = rs.String()
		}
		return e
	})
	if err != nil {
		fail("P8", err)
	}
	if serialOut != parOut {
		fail("P8", fmt.Errorf("parallel join result differs from serial"))
	}
	res.JoinSerialMs = float64(dJS.Microseconds()) / 1000
	res.JoinParallelMs = float64(dJP.Microseconds()) / 1000
	res.JoinSpeedup = float64(dJS.Nanoseconds()) / float64(dJP.Nanoseconds())
	fmt.Printf("hash join, serial:      %8.1f ms  (%d rows, byte-identical)\n", res.JoinSerialMs, res.JoinRows)
	fmt.Printf("hash join, %d workers:  %8.1f ms\n", workers, res.JoinParallelMs)
	fmt.Printf("join speedup: %.2fx (scaling requires >= %d cores)\n\n", res.JoinSpeedup, workers)
	if *p8out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail("P8", err)
		}
		if err := os.WriteFile(*p8out, append(buf, '\n'), 0o644); err != nil {
			fail("P8", err)
		}
		fmt.Printf("(P8 measurements written to %s)\n\n", *p8out)
	}
}

// p9AdmissionPoint is one admission-control throughput measurement:
// a fixed client fleet against 4 execution slots and one queue depth.
type p9AdmissionPoint struct {
	QueueDepth int     `json:"queue_depth"`
	Clients    int     `json:"clients"`
	Completed  int64   `json:"completed"`
	Rejected   int64   `json:"rejected"`
	WallMs     float64 `json:"wall_ms"`
	Qps        float64 `json:"qps"`
}

// p9Result is the recorded shape of the P9 experiment: resource-
// governor overhead on the 1M-cell filter scan (armed vs unarmed,
// byte-identical results enforced) and admission-control throughput at
// three queue depths. -p9out writes the latest run (truncating);
// committing BENCH_P9.json per change keeps the trajectory in git
// history.
type p9Result struct {
	Experiment  string             `json:"experiment"`
	Cells       int64              `json:"cells"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Rows        int                `json:"rows"`
	UnarmedMs   float64            `json:"unarmed_ms"`
	ArmedMs     float64            `json:"armed_ms"`
	OverheadPct float64            `json:"overhead_pct"`
	Admission   []p9AdmissionPoint `json:"admission"`
}

// runP9 measures the resource governor. Part one: the vectorized
// 1M-cell filter scan with the governor unarmed (no limits: budgeting
// is a nil pointer on the scan path) vs armed with generous limits
// (every chunk charges its byte estimate, the statement timer runs) —
// the target is <= 5% overhead with byte-identical results. Part two:
// admission-control throughput: a fleet of clients hammers 4 execution
// slots through wait queues of depth 1, 8 and 64; deeper queues trade
// rejections for completed work at roughly constant service rate.
func runP9() {
	if !want("P9") {
		return
	}
	n := int64(1024)
	iters := 5
	clients, perClient := 16, 12
	if *quick {
		n = 512
		iters = 3
		perClient = 6
	}
	header("P9", fmt.Sprintf("resource governor overhead + admission throughput (%dx%d = %d cells, GOMAXPROCS=%d)",
		n, n, n*n, runtime.GOMAXPROCS(0)))
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY gscan (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		v FLOAT DEFAUL`+`T 0.0)`, n, n))
	db.MustExec(`UPDATE gscan SET v = x * ` + fmt.Sprint(n) + ` + y`)
	db.Parallelism(1)
	db.Vectorize(true)

	cells := n * n
	q := fmt.Sprintf(`SELECT x, y, v FROM gscan WHERE v < %d`, cells/2)
	best := func() (time.Duration, string) {
		bd, out := time.Duration(0), ""
		for i := 0; i < iters; i++ {
			var s string
			d, err := timeIt(func() error {
				rs, e := db.Query(q)
				if e == nil {
					s = rs.String()
				}
				return e
			})
			if err != nil {
				fail("P9", err)
			}
			if bd == 0 || d < bd {
				bd = d
			}
			out = s
		}
		return bd, out
	}

	res := p9Result{Experiment: "P9", Cells: cells, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	dOff, outOff := best()
	// Armed: generous limits nothing trips, so the measurement isolates
	// the accounting cost — admission slot, statement timer, and the
	// per-chunk budget charges.
	db.SetMemoryLimit(1<<40, 1<<40)
	db.SetStatementTimeout(time.Hour)
	db.SetMaxConcurrentQueries(64)
	dOn, outOn := best()
	db.SetMemoryLimit(0, 0)
	db.SetStatementTimeout(0)
	db.SetMaxConcurrentQueries(0)
	if outOn != outOff {
		fail("P9", fmt.Errorf("governed scan result differs from ungoverned"))
	}
	res.Rows = strings.Count(outOff, "\n")
	res.UnarmedMs = float64(dOff.Microseconds()) / 1000
	res.ArmedMs = float64(dOn.Microseconds()) / 1000
	res.OverheadPct = (float64(dOn.Nanoseconds())/float64(dOff.Nanoseconds()) - 1) * 100
	fmt.Printf("filter scan, governor unarmed: %8.1f ms\n", res.UnarmedMs)
	fmt.Printf("filter scan, governor armed:   %8.1f ms  (byte-identical)\n", res.ArmedMs)
	fmt.Printf("governor overhead: %+.1f%% (target <= 5%%)\n", res.OverheadPct)

	// Admission throughput: a cheap per-query workload so the queue —
	// not the scan — is the contended resource.
	adb := sciql.Open()
	adb.MustExec(`CREATE ARRAY asmall (x INTEGER DIMENSION[256], y INTEGER DIMENSION[256], v FLOAT DEFAUL` + `T 0.0);
		UPDATE asmall SET v = x + y`)
	const aq = `SELECT x, y, v FROM asmall WHERE v > 128`
	adb.SetMaxConcurrentQueries(4)
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "queue depth", "completed", "rejected", "wall ms", "qps")
	for _, depth := range []int{1, 8, 64} {
		adb.SetAdmissionQueue(depth, 50*time.Millisecond)
		var completed, rejected int64
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					_, err := adb.Query(aq)
					switch {
					case err == nil:
						atomic.AddInt64(&completed, 1)
					case errors.Is(err, sciql.ErrAdmission):
						atomic.AddInt64(&rejected, 1)
					default:
						fail("P9", err)
					}
				}
			}()
		}
		wg.Wait()
		wall := time.Since(t0)
		pt := p9AdmissionPoint{
			QueueDepth: depth,
			Clients:    clients,
			Completed:  completed,
			Rejected:   rejected,
			WallMs:     float64(wall.Microseconds()) / 1000,
			Qps:        float64(completed) / wall.Seconds(),
		}
		res.Admission = append(res.Admission, pt)
		fmt.Printf("%-12d %10d %10d %10.1f %10.0f\n", depth, pt.Completed, pt.Rejected, pt.WallMs, pt.Qps)
	}
	fmt.Println()
	if *p9out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail("P9", err)
		}
		if err := os.WriteFile(*p9out, append(buf, '\n'), 0o644); err != nil {
			fail("P9", err)
		}
		fmt.Printf("(P9 measurements written to %s)\n\n", *p9out)
	}
}
