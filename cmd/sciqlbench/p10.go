package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/server/pgwire"
	"repro/sciql"
)

// p10Point is one fleet size of the network-throughput experiment.
type p10Point struct {
	Clients   int     `json:"clients"`
	Queries   int64   `json:"queries"`
	ConnectMs float64 `json:"connect_ms"`
	WallMs    float64 `json:"wall_ms"`
	Qps       float64 `json:"qps"`
}

// p10Result is the recorded shape of the P10 experiment: sciqld wire
// throughput over loopback TCP at three fleet sizes. -p10out writes
// the latest run (truncating); committing BENCH_P10.json per change
// keeps the trajectory in git history.
type p10Result struct {
	Experiment string     `json:"experiment"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Query      string     `json:"query"`
	Points     []p10Point `json:"points"`
}

// runP10 measures the sciqld network stack end to end: an in-process
// server on a loopback listener, fleets of 1, 64 and 1024 persistent
// pgwire clients each running the full simple-query cycle (frame,
// parse, execute, stream DataRows, ReadyForQuery) on a cheap point
// select. Connections are established outside the timed window; the
// per-fleet qps therefore isolates protocol + session overhead, and
// the 1-client point doubles as a wire round-trip latency figure.
func runP10() {
	if !want("P10") {
		return
	}
	fleets := []int{1, 64, 1024}
	total := int64(4096)
	if *quick {
		fleets = []int{1, 16, 128}
		total = 512
	}
	header("P10", fmt.Sprintf("sciqld wire throughput over loopback (fleets %v, GOMAXPROCS=%d)",
		fleets, runtime.GOMAXPROCS(0)))

	db := sciql.Open()
	db.MustExec(`CREATE ARRAY npoint (x INTEGER DIMENSION[64], y INTEGER DIMENSION[64], v FLOAT DEFAUL` + `T 0.0);
		UPDATE npoint SET v = x * 64 + y`)
	srv := server.New(db, server.Config{PgAddr: "127.0.0.1:0", MaxConns: 4096})
	if err := srv.Start(); err != nil {
		fail("P10", err)
	}
	defer srv.Shutdown(nil)
	addr := srv.PgAddr()

	const q = `SELECT v FROM npoint WHERE x = 7 AND y = 9`
	res := p10Result{Experiment: "P10", GOMAXPROCS: runtime.GOMAXPROCS(0), Query: q}
	fmt.Printf("%-10s %10s %12s %10s %10s\n", "clients", "queries", "connect ms", "wall ms", "qps")
	for _, fleet := range fleets {
		perClient := total / int64(fleet)
		if perClient < 1 {
			perClient = 1
		}

		// Dial the whole fleet before starting the clock: connection
		// setup (TCP + startup handshake + session open) is measured
		// separately so qps reflects steady-state query traffic.
		tConn := time.Now()
		clients := make([]*pgwire.Client, fleet)
		for i := range clients {
			c, err := pgwire.Dial(addr, pgwire.ClientConfig{User: "bench", Database: "sciql"})
			if err != nil {
				fail("P10", err)
			}
			clients[i] = c
		}
		connectMs := float64(time.Since(tConn).Microseconds()) / 1000

		var done int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for _, c := range clients {
			wg.Add(1)
			go func(c *pgwire.Client) {
				defer wg.Done()
				<-start
				for i := int64(0); i < perClient; i++ {
					rs, err := c.SimpleQuery(q)
					if err != nil {
						fail("P10", err)
					}
					if len(rs) != 1 || len(rs[0].Rows) != 1 {
						fail("P10", fmt.Errorf("point select returned unexpected result shape"))
					}
					atomic.AddInt64(&done, 1)
				}
			}(c)
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		wall := time.Since(t0)
		for _, c := range clients {
			c.Close()
		}

		pt := p10Point{
			Clients:   fleet,
			Queries:   done,
			ConnectMs: connectMs,
			WallMs:    float64(wall.Microseconds()) / 1000,
			Qps:       float64(done) / wall.Seconds(),
		}
		res.Points = append(res.Points, pt)
		fmt.Printf("%-10d %10d %12.1f %10.1f %10.0f\n", pt.Clients, pt.Queries, pt.ConnectMs, pt.WallMs, pt.Qps)
	}
	fmt.Println()
	if *p10out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail("P10", err)
		}
		if err := os.WriteFile(*p10out, append(buf, '\n'), 0o644); err != nil {
			fail("P10", err)
		}
		fmt.Printf("(P10 measurements written to %s)\n\n", *p10out)
	}
}
