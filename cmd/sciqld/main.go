// Command sciqld serves a SciQL database over the network: the
// PostgreSQL wire protocol (any psql/pgx/JDBC client) on one port and
// an HTTP/JSON API (+ /metrics, /healthz, /readyz) on another.
//
// Every flag also reads a SCIQLD_* environment variable (flag wins):
//
//	sciqld -pg :5433 -http :8080 -max-concurrent 8 -statement-timeout 30s
//
// The process runs until SIGINT/SIGTERM, then drains: listeners
// close, idle connections are told goodbye (SQLSTATE 57P01),
// in-flight statements get the grace period, the engine admission
// gate drains, and stragglers are cut.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/sciql"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sciqld:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pgAddr    = flag.String("pg", envStr("SCIQLD_PG_ADDR", "127.0.0.1:5433"), "pgwire listen address (empty disables)")
		httpAddr  = flag.String("http", envStr("SCIQLD_HTTP_ADDR", "127.0.0.1:8080"), "HTTP/JSON listen address (empty disables)")
		password  = flag.String("password", envStr("SCIQLD_PASSWORD", ""), "cleartext auth password (empty = trust)")
		maxConns  = flag.Int("max-conns", envInt("SCIQLD_MAX_CONNS", 0), "max concurrent pgwire connections (0 = unlimited)")
		maxQ      = flag.Int("max-concurrent", envInt("SCIQLD_MAX_CONCURRENT", 0), "max concurrently executing statements (0 = off; arms admission control)")
		queueLen  = flag.Int("admission-queue", envInt("SCIQLD_ADMISSION_QUEUE", 0), "admission queue depth")
		queueWait = flag.Duration("admission-wait", envDur("SCIQLD_ADMISSION_WAIT", 0), "max admission queue wait")
		memQuery  = flag.Int64("mem-per-query", envInt64("SCIQLD_MEM_PER_QUERY", 0), "per-query memory budget in bytes (0 = off)")
		memTotal  = flag.Int64("mem-total", envInt64("SCIQLD_MEM_TOTAL", 0), "total memory budget in bytes (0 = off)")
		stmtTO    = flag.Duration("statement-timeout", envDur("SCIQLD_STATEMENT_TIMEOUT", 0), "per-statement wall-clock timeout (0 = off)")
		slowQ     = flag.Duration("slow-query", envDur("SCIQLD_SLOW_QUERY", 0), "slow-query log threshold (0 = off)")
		grace     = flag.Duration("shutdown-grace", envDur("SCIQLD_SHUTDOWN_GRACE", 10*time.Second), "graceful-shutdown grace period")
		initFile  = flag.String("init", envStr("SCIQLD_INIT", ""), "SQL script to run at startup (schema/bootstrap)")
		logLevel  = flag.String("log-level", envStr("SCIQLD_LOG_LEVEL", "info"), "log level: debug, info, warn, error")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	db := sciql.Open()
	defer db.Close()
	if *initFile != "" {
		src, err := os.ReadFile(*initFile)
		if err != nil {
			return fmt.Errorf("read -init: %w", err)
		}
		if _, err := db.Exec(string(src)); err != nil {
			return fmt.Errorf("run -init script: %w", err)
		}
		log.Info("init script applied", "file", *initFile)
	}

	srv := server.New(db, server.Config{
		PgAddr:               *pgAddr,
		HTTPAddr:             *httpAddr,
		Password:             *password,
		MaxConns:             *maxConns,
		MaxConcurrentQueries: *maxQ,
		AdmissionQueueDepth:  *queueLen,
		AdmissionQueueWait:   *queueWait,
		MemoryLimitPerQuery:  *memQuery,
		MemoryLimitTotal:     *memTotal,
		StatementTimeout:     *stmtTO,
		SlowQueryThreshold:   *slowQ,
		ShutdownGrace:        *grace,
		Log:                  log,
	})
	if err := srv.Start(); err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Info("signal received, shutting down", "signal", got.String())
	return srv.Shutdown(nil)
}

func envStr(key, def string) string {
	if v, ok := os.LookupEnv(key); ok {
		return v
	}
	return def
}

func envInt(key string, def int) int {
	if v, ok := os.LookupEnv(key); ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func envInt64(key string, def int64) int64 {
	if v, ok := os.LookupEnv(key); ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func envDur(key string, def time.Duration) time.Duration {
	if v, ok := os.LookupEnv(key); ok {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return def
}
