// Package repro_test is the benchmark harness that regenerates every
// figure and functional experiment of "SciQL, A Query Language for
// Science Applications" (EDBT 2011). One benchmark per artifact; the
// experiment IDs (F1–F3, A1–A6, B1–B2, C1–C4, X1–X3, plus ablations)
// follow DESIGN.md's experiment index, and cmd/sciqlbench prints the
// same measurements as paper-style tables. EXPERIMENTS.md records the
// observed shapes against the paper's claims.
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/storage"
	"repro/sciql"
)

// --- F1: Figure 1 — alternative array storage schemes ----------------------

// BenchmarkFig1StorageSchemes measures scan, random point access and
// slab access under each of the four physical representations at
// three densities. Expected shape: dense (virtual/dorder) wins on
// dense data; tabular catches up as density drops (its cost tracks
// live cells, not the box volume).
func BenchmarkFig1StorageSchemes(b *testing.B) {
	const n = 256
	for _, density := range []float64{1.0, 0.1, 0.01} {
		for _, scheme := range []string{
			storage.SchemeVirtual, storage.SchemeTabular,
			storage.SchemeDOrder, storage.SchemeSlab,
		} {
			a, err := experiments.MakeGrid(scheme, n, density, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("scan/%s/density=%v", scheme, density), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = experiments.ScanSum(a)
				}
			})
			b.Run(fmt.Sprintf("point/%s/density=%v", scheme, density), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = experiments.PointProbes(a, 4096, 2)
				}
			})
			b.Run(fmt.Sprintf("slice/%s/density=%v", scheme, density), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = experiments.SliceSum(a)
				}
			})
		}
	}
}

// --- Ablation: slab-size sweep ----------------------------------------------

// BenchmarkSlabSize sweeps the slab edge length (the SciDB-style
// chunking parameter of §2.2). Expected shape: tiny slabs pay map
// overhead; large slabs converge to the dense scan.
func BenchmarkSlabSize(b *testing.B) {
	const n = 256
	for _, size := range []int64{8, 16, 64, 256} {
		a, err := experiments.MakeGridSlab(n, size, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("scan/slab=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = experiments.ScanSum(a)
			}
		})
		b.Run(fmt.Sprintf("point/slab=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = experiments.PointProbes(a, 4096, 2)
			}
		})
	}
}

// --- F2: Figure 2 — array forms ---------------------------------------------

// BenchmarkFig2ArrayForms scans + aggregates the four declared forms.
// Expected shape: stripes/diagonal cost tracks their (much smaller)
// live-cell count, not the bounding box.
func BenchmarkFig2ArrayForms(b *testing.B) {
	const n = 128
	for _, form := range []string{"matrix", "stripes", "diagonal", "sparse"} {
		s, err := experiments.MakeForm(form, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(form, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.FormAggregate(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- F3: Figure 3 — array tiling --------------------------------------------

// BenchmarkFig3Tiling sweeps tile sizes for overlapping and DISTINCT
// tiling. Expected shape: overlapping cost grows with tile area;
// DISTINCT divides the group count (and cost) by the tile area.
func BenchmarkFig3Tiling(b *testing.B) {
	const n = 64
	s, err := experiments.NewMatrixSession(n)
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range []int64{2, 4, 8} {
		b.Run(fmt.Sprintf("overlapping/t=%d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Tiling(s, t, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("distinct/t=%d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Tiling(s, t, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A1–A5: the AML suite (§7.1) --------------------------------------------

func newAML(b *testing.B, n int) *experiments.AML {
	b.Helper()
	a, err := experiments.NewAML(n)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAMLDestripe is A1: the every-sixth-line channel-6
// correction through the black-box noise() function.
func BenchmarkAMLDestripe(b *testing.B) {
	a := newAML(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Destripe(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMLTVI is A2: per-pixel 3×3 convolution on two bands
// composed through white-box functions.
func BenchmarkAMLTVI(b *testing.B) {
	a := newAML(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.TVI(32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMLNDVI is A3: radiance conversion + normalized difference
// over the full image.
func BenchmarkAMLNDVI(b *testing.B) {
	a := newAML(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.NDVI(i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMLMask is A4: 3×3 tile averages with a HAVING filter.
func BenchmarkAMLMask(b *testing.B) {
	a := newAML(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Mask(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMLWavelet is A5: image reconstruction via correlated
// array-slicing subqueries.
func BenchmarkAMLWavelet(b *testing.B) {
	a := newAML(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Wavelet(i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMLMatVec is A6: matrix–vector multiplication via row
// tiling.
func BenchmarkAMLMatVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MatVec(128); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B1/B2: astronomy (§7.2) -------------------------------------------------

// BenchmarkAstroBinning is B1: 100k photon events into a 2-D
// histogram via value grouping + array coercion.
func BenchmarkAstroBinning(b *testing.B) {
	a, err := experiments.NewAstro(100000, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, err := a.Binning(i)
		if err != nil {
			b.Fatal(err)
		}
		if total != 100000 {
			b.Fatalf("binned %d events, want 100000", total)
		}
	}
}

// BenchmarkAstroRebin is the 16× re-binning of B1 via DISTINCT tiling.
func BenchmarkAstroRebin(b *testing.B) {
	a, err := experiments.NewAstro(100000, 256)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.PrepareImage(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Rebin(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAstroWCS is B2: the linear pixel→world transform over
// every cell of the image.
func BenchmarkAstroWCS(b *testing.B) {
	s, err := experiments.NewWCSSession(128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.WCS(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C1–C4: seismology (§7.3) --------------------------------------------------

func newSeis(b *testing.B, n int) *experiments.Seis {
	b.Helper()
	s, err := experiments.NewSeis(n, 20, 30)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSeisRetrieve is C1: time-window slicing over the series.
func BenchmarkSeisRetrieve(b *testing.B) {
	s := newSeis(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Retrieve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeisGaps is C2: next()-based gap detection.
func BenchmarkSeisGaps(b *testing.B) {
	s := newSeis(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Gaps()
		if err != nil {
			b.Fatal(err)
		}
		if got != len(s.W.GapStarts) {
			b.Fatalf("found %d gaps, generator injected %d", got, len(s.W.GapStarts))
		}
	}
}

// BenchmarkSeisSpikes is C3: threshold spike detection.
func BenchmarkSeisSpikes(b *testing.B) {
	s := newSeis(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Spikes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeisMovAvg is C4: the trailing moving average via tiling
// over the sparse time dimension.
func BenchmarkSeisMovAvg(b *testing.B) {
	s := newSeis(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MovAvg(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- X1: structural grouping vs relational self-joins ------------------------

// BenchmarkBaselineConvolution compares the SciQL tiling formulation
// of a 4-neighbor convolution against the equivalent pure-relational
// self-join formulation. Expected shape: tiling wins by a clear
// factor — the paper's core impedance-mismatch argument.
func BenchmarkBaselineConvolution(b *testing.B) {
	const n = 48
	s, err := experiments.NewMatrixSession(n)
	if err != nil {
		b.Fatal(err)
	}
	if err := experiments.ConvRelationalSetup(s); err != nil {
		b.Fatal(err)
	}
	b.Run("sciql-tiling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got, err := experiments.ConvTiling(s)
			if err != nil {
				b.Fatal(err)
			}
			if got != n*n {
				b.Fatalf("tiling produced %d anchors, want %d", got, n*n)
			}
		}
	})
	b.Run("relational-selfjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.ConvRelational(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- P1/P2: morsel-driven parallel execution ----------------------------------

// newParBenchDB builds the n×n matrix the parallel benches query.
func newParBenchDB(b *testing.B, n int) *sciql.DB {
	b.Helper()
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(
		`CREATE ARRAY pmatrix (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n))
	db.MustExec(`UPDATE pmatrix SET v = x * 31 + y`)
	return db
}

// BenchmarkParallelTiling is P1: the §4.4 tiled aggregation executed
// serially and morsel-parallel. Anchors are the morsels; per-worker
// partial aggregates merge at the end. Expected shape on a multi-core
// host: near-linear scaling (>= 1.8x at 4 workers); identical result
// datasets at every width.
func BenchmarkParallelTiling(b *testing.B) {
	const n = 96
	db := newParBenchDB(b, n)
	const q = `SELECT [x], [y], AVG(v) FROM pmatrix GROUP BY DISTINCT pmatrix[x:x+4][y:y+4]`
	want := db.MustQuery(q).String()
	for _, par := range []int{1, 2, 4} {
		db.Parallelism(par)
		if got := db.MustQuery(q).String(); got != want {
			b.Fatalf("parallelism %d changed the result", par)
		}
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.MustQuery(q)
			}
		})
	}
}

// BenchmarkParallelFilterAgg is P2: scan → filter → grouped aggregate
// over row morsels with per-worker hash tables.
func BenchmarkParallelFilterAgg(b *testing.B) {
	const n = 256
	db := newParBenchDB(b, n)
	const q = `SELECT MOD(x, 7) AS k, AVG(v), COUNT(*) FROM pmatrix WHERE MOD(x + y, 3) < 2 GROUP BY MOD(x, 7) ORDER BY k`
	want := db.MustQuery(q).String()
	for _, par := range []int{1, 2, 4} {
		db.Parallelism(par)
		if got := db.MustQuery(q).String(); got != want {
			b.Fatalf("parallelism %d changed the result", par)
		}
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.MustQuery(q)
			}
		})
	}
}

// --- P3: chunked parallel array scans + runtime projection pruning -----------

// BenchmarkParallelScan is P3: the scan itself — not just post-scan
// operators — split into store chunks across the morsel pool, with the
// optimizer's pruned projection applied at runtime. filter-heavy runs
// a residual (non-pushable) predicate over a 1M-cell array serially
// and at 4 workers; projection compares a full five-column scan
// against the pruned three-column scan of the same filter (ReportAllocs
// makes the skipped attribute materialization visible). Expected shape:
// near-linear scan scaling on a >= 4-core host (single-core containers
// show only scheduling overhead, as with P1); pruning wins on any host.
func BenchmarkParallelScan(b *testing.B) {
	const n = 1024 // 1024x1024 = 1,048,576 cells
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY bigscan (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		a FLOAT DEFAULT 1.0, b FLOAT DEFAULT 2.0, c FLOAT DEFAULT 3.0)`, n, n))
	const filterQ = `SELECT x, y, a FROM bigscan WHERE MOD(x * 31 + y, 7) < 3 AND MOD(x + y, 5) <> 0 AND a > 0`
	db.Parallelism(1)
	want := db.MustQuery(filterQ).NumRows()
	for _, par := range []int{1, 4} {
		db.Parallelism(par)
		if got := db.MustQuery(filterQ).NumRows(); got != want {
			b.Fatalf("parallelism %d changed the result: %d rows, want %d", par, got, want)
		}
		b.Run(fmt.Sprintf("filter-heavy/workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.MustQuery(filterQ)
			}
		})
	}
	db.Parallelism(4)
	const fullQ = `SELECT x, y, a, b, c FROM bigscan WHERE MOD(x * 31 + y, 7) = 0`
	const prunedQ = `SELECT x, y, a FROM bigscan WHERE MOD(x * 31 + y, 7) = 0`
	b.Run("projection/full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db.MustQuery(fullQ)
		}
	})
	b.Run("projection/pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db.MustQuery(prunedQ)
		}
	})
}

// --- P4: vectorized execution (BAT kernels vs interpreter) --------------------

// BenchmarkVectorizedScan is P4: filter + projection compiled into
// bulk column-at-a-time kernels over scan chunks versus the
// tree-walking interpreter, single-core, on the P3 workload shape
// (1M-cell filter-heavy scan). ReportAllocs makes the collapse from
// per-row boxing to per-batch vectors visible. projection compares a
// full five-column scan against the pruned three-column scan, both
// vectorized. Expected shape: >= 2x from vectorization on any host
// (it removes interpretation overhead, not memory bandwidth), with
// allocations down by orders of magnitude.
func BenchmarkVectorizedScan(b *testing.B) {
	const n = 1024 // 1024x1024 = 1,048,576 cells
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY vecscan (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		a FLOAT DEFAULT 1.0, b FLOAT DEFAULT 2.0, c FLOAT DEFAULT 3.0)`, n, n))
	const filterQ = `SELECT x, y, a FROM vecscan WHERE MOD(x * 31 + y, 7) < 3 AND MOD(x + y, 5) <> 0 AND a > 0`
	const fullQ = `SELECT x, y, a, b, c FROM vecscan WHERE MOD(x * 31 + y, 7) = 0`
	const prunedQ = `SELECT x, y, a FROM vecscan WHERE MOD(x * 31 + y, 7) = 0`
	db.Parallelism(1)
	db.Vectorize(false)
	want := db.MustQuery(filterQ).String()
	db.Vectorize(true)
	if got := db.MustQuery(filterQ).String(); got != want {
		b.Fatal("vectorized result differs from the interpreter")
	}
	for _, vec := range []bool{false, true} {
		db.Vectorize(vec)
		name := "interpreted"
		if vec {
			name = "vectorized"
		}
		b.Run("filter-heavy/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db.MustQuery(filterQ)
			}
		})
		b.Run("projection-full/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db.MustQuery(fullQ)
			}
		})
		b.Run("projection-pruned/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db.MustQuery(prunedQ)
			}
		})
	}
	db.Vectorize(true)
}

// --- P8: zone-map chunk skipping + parallel partitioned hash join ------------

// BenchmarkChunkSkip is P8a: the same 256k-cell filter scan with
// zone-map chunk skipping disabled and enabled, at three selectivities
// of a range predicate over a monotone attribute. Expected shape:
// skipping wins big at 1% (nearly every chunk's [min,max] misses the
// range), still clearly at 34%, and costs nothing measurable at 100%
// (the pre-scan bound check is one comparison per chunk). Results are
// byte-identical either way — skipping only prunes chunks whose bounds
// prove no cell can match.
func BenchmarkChunkSkip(b *testing.B) {
	const n = 512 // 512x512 = 262,144 cells
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(
		`CREATE ARRAY zbench (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n))
	db.MustExec(fmt.Sprintf(`UPDATE zbench SET v = x * %d + y`, n))
	db.Parallelism(1)
	cells := int64(n) * int64(n)
	for _, pct := range []int64{1, 34, 100} {
		q := fmt.Sprintf(`SELECT x, y, v FROM zbench WHERE v < %d`, cells*pct/100)
		db.ChunkSkip(false)
		want := db.MustQuery(q).String()
		db.ChunkSkip(true)
		if got := db.MustQuery(q).String(); got != want {
			b.Fatalf("chunk skipping changed the result at %d%% selectivity", pct)
		}
		for _, skip := range []bool{false, true} {
			db.ChunkSkip(skip)
			name := "skip=off"
			if skip {
				name = "skip=on"
			}
			b.Run(fmt.Sprintf("sel=%d%%/%s", pct, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					db.MustQuery(q)
				}
			})
		}
	}
	db.ChunkSkip(true)
}

// BenchmarkParallelJoin is P8b: the partitioned hash join over the
// morsel pool — build side chosen by estimated cardinality (the small
// dimension table), probe side partitioned into store chunks across
// workers. Byte-identity with the serial join is asserted at every
// width. Expected shape on a multi-core host: probe scaling tracks
// worker count; single-core containers show only the partition/merge
// overhead floor.
func BenchmarkParallelJoin(b *testing.B) {
	const n = 256 // 256x256 = 65,536 probe cells
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(
		`CREATE ARRAY jl (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0)`, n, n))
	db.MustExec(fmt.Sprintf(`UPDATE jl SET v = x * %d + y`, n))
	db.MustExec(`CREATE ARRAY jr (x INTEGER DIMENSION[64], y INTEGER DIMENSION[64], s FLOAT DEFAULT 3.0)`)
	const q = `SELECT l.x, l.y, (l.v + r.s) AS e FROM jl AS l JOIN jr AS r ON l.x = r.x AND l.y = r.y`
	db.Parallelism(1)
	want := db.MustQuery(q).String()
	for _, par := range []int{1, 2, 4} {
		db.Parallelism(par)
		if got := db.MustQuery(q).String(); got != want {
			b.Fatalf("parallelism %d changed the join result", par)
		}
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.MustQuery(q)
			}
		})
	}
}

// --- X2: data-vault lazy metadata access -------------------------------------

// BenchmarkVaultLazyCount compares the header-only COUNT of the data
// vault against full ingestion + scan. Expected shape: orders of
// magnitude apart (§2.1).
func BenchmarkVaultLazyCount(b *testing.B) {
	v, err := experiments.NewVaultFixture(256, 50000)
	if err != nil {
		b.Fatal(err)
	}
	defer v.Close()
	b.Run("header-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := v.LazyCount(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-ingest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := v.FullCount(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- X3: black-box marshaling cost --------------------------------------------

// BenchmarkBlackBoxMarshal measures the §6.2 recast: marshaling a
// row-major store to a row-major library buffer (aligned, memcpy-like)
// vs marshaling a column-major store to the same buffer (per-element
// re-addressing).
func BenchmarkBlackBoxMarshal(b *testing.B) {
	m, err := experiments.NewMarshalFixture(512)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("aligned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.MarshalAligned(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.MarshalRecast(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- P2: prepared statements vs ad-hoc text --------------------------------

// BenchmarkPreparedVsAdhoc quantifies the plan-cache win on repeated
// parameterized SELECTs: "adhoc-uncached" re-parses and re-plans every
// execution (statement cache disabled), "adhoc-cached" hits the DB's
// LRU statement cache, and "prepared" re-executes a *sciql.Stmt. The
// array is small so parse+plan dominates; with parallelism configured
// the planner's fold/compile/pushdown/prune pass sits on the ad-hoc
// hot path and is skipped by the cached and prepared variants.
func BenchmarkPreparedVsAdhoc(b *testing.B) {
	const q = `SELECT x, y, v, SQRT(v) + POWER(v, 0.25) AS s,
	        CASE WHEN MOD(x + y, 2) = 0 THEN v * 2.0 ELSE v / 2.0 END AS w
	      FROM bench
	      WHERE x >= ?x AND x < ?x + 8 AND y >= 0 AND y < 16
	        AND v > ?lo AND MOD(x * 31 + y, 7) <> 3
	        AND (v < 1000000 OR SQRT(v + 1) > 0 OR POWER(v, 2) < 100000000)`
	open := func(b *testing.B) *sciql.DB {
		b.Helper()
		db := sciql.Open()
		db.MustExec(`CREATE ARRAY bench (x INTEGER DIMENSION[4], y INTEGER DIMENSION[4], v FLOAT DEFAULT 0.0)`)
		db.MustExec(`UPDATE bench SET v = x * 31 + y`)
		db.Parallelism(4)
		return db
	}
	args := func(i int) []sciql.Arg {
		return []sciql.Arg{sciql.Int("x", int64(i)%4), sciql.Float("lo", 1)}
	}
	b.Run("adhoc-uncached", func(b *testing.B) {
		db := open(b)
		db.SetPlanCacheSize(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q, args(i)...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adhoc-cached", func(b *testing.B) {
		db := open(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q, args(i)...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		db := open(b)
		st, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Query(args(i)...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConcurrentReaders measures connection scaling on the
// 1M-cell scan: the same aggregate query drained by 1 vs 4 concurrent
// sciql.Conn sessions. With snapshot-pinned reads and no shared
// statement mutex, N connections do N scans in roughly the wall time
// of one on an N-core machine (single-core containers show the
// overhead floor instead). The P5 experiment in cmd/sciqlbench
// records the same shape with wall-clock timing.
func BenchmarkConcurrentReaders(b *testing.B) {
	const n = 1024 // 1024x1024 = 1,048,576 cells
	db := sciql.Open()
	db.MustExec(fmt.Sprintf(`CREATE ARRAY conc (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d],
		a FLOAT DEFAULT 1.0, b FLOAT DEFAULT 2.0)`, n, n))
	const q = `SELECT x, y, a FROM conc WHERE MOD(x * 31 + y, 7) < 3`
	for _, conns := range []int{1, 4} {
		b.Run(fmt.Sprintf("conns-%d", conns), func(b *testing.B) {
			sessions := make([]*sciql.Conn, conns)
			for i := range sessions {
				c, err := db.Conn(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				sessions[i] = c
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, c := range sessions {
					wg.Add(1)
					go func(c *sciql.Conn) {
						defer wg.Done()
						rows, err := c.QueryContext(context.Background(), q)
						if err != nil {
							b.Error(err)
							return
						}
						defer rows.Close()
						for rows.Next() {
						}
						if err := rows.Err(); err != nil {
							b.Error(err)
						}
					}(c)
				}
				wg.Wait()
			}
		})
	}
}
