// Landsat image analysis: the AML functional benchmark of §7.1 end to
// end on a synthetic multi-spectral scene — DESTRIPE, TVI with a 3x3
// convolution filter, NDVI, MASK and WAVELET reconstruction.
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
	"repro/sciql"
)

const n = 128 // image edge; the paper uses 1024, the pipeline is identical

func main() {
	s := core.NewSession()
	if err := s.DeclareStdFunctions(); err != nil {
		panic(err)
	}
	ls := workload.NewLandsat(7, n, 42)
	if _, err := s.LoadLandsat("landsat", ls); err != nil {
		panic(err)
	}
	fmt.Printf("loaded synthetic landsat: 7 channels x %dx%d\n", n, n)

	ctx := context.Background()
	mustRun := func(sql string, params map[string]value.Value) {
		if _, err := s.RunContext(ctx, sql, params); err != nil {
			panic(fmt.Sprintf("%v\nSQL: %s", err, sql))
		}
	}

	// --- DESTRIPE (§7.1.1): correct the channel-6 drift on every
	// sixth scan line. The mean probe is a prepared statement over the
	// public API — parsed and planned once, executed three times with
	// different line-parity bindings.
	db := s.DB()
	lineMean, err := db.Prepare(
		`SELECT AVG(v) FROM landsat WHERE channel = 6 AND MOD(x,6) = ?parity`)
	if err != nil {
		panic(err)
	}
	meanAt := func(parity int64) float64 {
		rs, err := lineMean.QueryContext(ctx, sciql.Int("parity", parity))
		if err != nil {
			panic(err)
		}
		defer rs.Close()
		var m float64
		if !rs.Next() {
			panic("no mean row")
		}
		if err := rs.Scan(&m); err != nil {
			panic(err)
		}
		return m
	}
	before := meanAt(1)
	mustRun(`UPDATE landsat SET v = noise(v, ?delta) WHERE channel = 6 AND MOD(x,6) = 1`,
		map[string]value.Value{"delta": value.NewFloat(float64(ls.Delta))})
	fmt.Printf("DESTRIPE: striped-line mean %.2f -> %.2f (clean lines: %.2f)\n",
		before, meanAt(1), meanAt(0))

	// --- TVI (§7.1.2): noise-reduce bands 3 and 4 with the conv
	// filter, then combine.
	mustRun(`
		CREATE FUNCTION tvi (b3 REAL, b4 REAL) RETURNS REAL
		RETURN POWER(((b4 - b3) / (b4 + b3) + 0.5), 0.5);
		CREATE FUNCTION conv (a ARRAY(i INTEGER DIMENSION[3], j INTEGER DIMENSION[3], v FLOAT))
		RETURNS FLOAT
		BEGIN
			DECLARE s1 FLOAT, s2 FLOAT, z FLOAT;
			SET s1 = (a[0][0].v + a[0][2].v + a[2][0].v + a[2][2].v)/4.0;
			SET s2 = (a[0][1].v + a[1][0].v + a[1][2].v + a[2][1].v)/4.0;
			SET z = 2 * ABS(s1 - s2);
			IF ((ABS(a[1][1].v - s1) > z) OR (ABS(a[1][1].v - s2) > z))
			THEN RETURN s2;
			ELSE RETURN a[1][1].v;
			END IF;
		END;
	`, nil)
	// Working copies of bands 3 and 4 (2-D float arrays).
	if _, err := s.LoadChannel("b3", ls, 3); err != nil {
		panic(err)
	}
	if _, err := s.LoadChannel("b4", ls, 4); err != nil {
		panic(err)
	}
	tviDS, err := s.RunContext(ctx, `
		SELECT [x], [y], tvi(conv(b3[x-1:x+2][y-1:y+2]), conv(b4[x-1:x+2][y-1:y+2]))
		FROM b3[1:`+fmt.Sprint(n-1)+`][1:`+fmt.Sprint(n-1)+`]`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TVI: computed %d vegetation-index pixels (e.g. first = %s)\n",
		tviDS.NumRows(), tviDS.Get(0, 2))

	// --- NDVI (§7.1.3): radiance conversion and normalized difference.
	mustRun(`
		CREATE FUNCTION intens2radiance (b INT, lmin REAL, lmax REAL) RETURNS REAL
		RETURN (lmax-lmin) * b / 255.0 + lmin;
		CREATE ARRAY ndvi (
			x INT DIMENSION[`+fmt.Sprint(n)+`],
			y INT DIMENSION[`+fmt.Sprint(n)+`],
			b1 REAL, b2 REAL, v REAL);
		UPDATE ndvi SET
			b1 = (SELECT intens2radiance(landsat[3][x][y].v, ?lmin, ?lmax) FROM landsat),
			b2 = (SELECT intens2radiance(landsat[4][x][y].v, ?lmin, ?lmax) FROM landsat),
			v  = (b2 - b1) / (b2 + b1);
	`, map[string]value.Value{"lmin": value.NewFloat(0.5), "lmax": value.NewFloat(1.5)})
	stats, _ := s.RunContext(ctx, `SELECT MIN(v), AVG(v), MAX(v) FROM ndvi`, nil)
	fmt.Printf("NDVI: min=%.3f avg=%.3f max=%.3f (vegetation > 0)\n",
		stats.Get(0, 0).AsFloat(), stats.Get(0, 1).AsFloat(), stats.Get(0, 2).AsFloat())

	// --- MASK (§7.1.4): 3x3 tile averages kept within [10, 100].
	mask, err := s.RunContext(ctx, `
		SELECT [x], [y], AVG(v) FROM b3
		GROUP BY b3[x-1:x+2][y-1:y+2]
		HAVING AVG(v) BETWEEN 10 AND 100`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("MASK: %d of %d tiles fall in [10,100]\n", mask.NumRows(), n*n)

	// --- WAVELET (§7.1.5): reconstruct a 2n' x n' image from two
	// n' x n' component arrays via index arithmetic.
	half := n / 2
	mustRun(fmt.Sprintf(`
		CREATE ARRAY wd (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 1.0);
		CREATE ARRAY we (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.25);
		CREATE ARRAY wimg (x INTEGER DIMENSION[%d], y INTEGER DIMENSION[%d], v FLOAT DEFAULT 0.0);
		UPDATE wimg SET wimg[x][y].v = (SELECT wd[x/2][y].v + we[x/2][y].v * POWER(-1,x) FROM wd, we);
	`, half, half, half, half, n, half), nil)
	w, _ := s.RunContext(ctx, `SELECT wimg[0][0].v, wimg[1][0].v`, nil)
	fmt.Printf("WAVELET: even row = %.2f, odd row = %.2f (1±0.25)\n",
		w.Get(0, 0).AsFloat(), w.Get(0, 1).AsFloat())

	// --- Matrix-vector multiplication (§7.1.6) via row tiling.
	mustRun(`
		CREATE ARRAY mva (x INT DIMENSION[8], y INT DIMENSION[8], v FLOAT DEFAULT 1.0);
		CREATE ARRAY mvb (k INT DIMENSION[8], v FLOAT DEFAULT 2.0);
		CREATE ARRAY mv (x INT DIMENSION[8], v FLOAT DEFAULT 0.0);
		UPDATE mv SET mv[x].v = (SELECT SUM(mva[x][y].v * mvb[y].v) FROM mva GROUP BY mva[x][*]);
	`, nil)
	mv, _ := s.RunContext(ctx, `SELECT v FROM mv WHERE x = 0`, nil)
	fmt.Printf("MATVEC: row dot product = %.1f (8 x 1 x 2)\n", mv.Get(0, 0).AsFloat())
}
