// Astronomy: the §7.2 FITS use cases — register a FITS-lite file in
// the data vault, answer COUNT from the header alone, attach the
// payload, bin X-ray photon events into an image, re-bin via tiling,
// and map pixel coordinates to a world coordinate system.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/vault/fits"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "sciql-astro")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Produce a FITS-lite file: a 256x256 image in the primary HDU and
	// an X-ray photon event table extension.
	ls := workload.NewLandsat(1, 256, 7)
	ev := workload.NewXRayEvents(200000, 256, 5, 7)
	path := filepath.Join(dir, "obs.fits")
	f := &fits.File{Primary: ls.ToFITS(0), Tables: []*fits.BinTable{ev.ToFITSTable()}}
	if err := fits.WriteFile(path, f); err != nil {
		panic(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("wrote %s (%d bytes)\n", path, fi.Size())

	ctx := context.Background()
	s := core.NewSession()

	// Data vault (§2.1): register, then answer metadata queries from
	// the header without loading the payload.
	if _, err := s.Vault.Register(path, "", "obs"); err != nil {
		panic(err)
	}
	n, err := s.Vault.Count(path)
	if err != nil {
		panic(err)
	}
	shape, _ := s.Vault.Shape(path)
	fmt.Printf("vault peek: %d pixels, shape %v (header only — no payload read)\n", n, shape)

	// Attach: materialize image + event table into the catalog.
	if err := s.Vault.AttachFITS(path, s.Engine.Cat); err != nil {
		panic(err)
	}
	fmt.Println("attached: array 'obs' and table 'obs_t1'")

	// X-ray binning (§7.2.1): the event table becomes a 2-D histogram.
	mustRun := func(sql string, params map[string]value.Value) {
		if _, err := s.RunContext(ctx, sql, params); err != nil {
			panic(fmt.Sprintf("%v\nSQL: %s", err, sql))
		}
	}
	mustRun(`
		CREATE ARRAY ximage (
			x INTEGER DIMENSION,
			y INTEGER DIMENSION,
			v INTEGER DEFAULT 0);
		INSERT INTO ximage SELECT [x], [y], count(*) FROM obs_t1 GROUP BY x, y;
	`, nil)
	tot, _ := s.RunContext(ctx, `SELECT SUM(v), MAX(v) FROM ximage`, nil)
	fmt.Printf("binned image: %s events total, hottest pixel %s\n",
		tot.Get(0, 0), tot.Get(0, 1))

	// Re-binning 16x via DISTINCT tiling.
	rebin, err := s.DB().QueryContext(ctx, `
		SELECT [x/16], [y/16], SUM(v) FROM ximage
		GROUP BY DISTINCT ximage[x:x+16][y:y+16]
		ORDER BY 3 DESC LIMIT 3`)
	if err != nil {
		panic(err)
	}
	fmt.Println("brightest 16x16 super-bins (the injected point sources):")
	for rebin.Next() {
		var bx, by, sum int64
		if err := rebin.Scan(&bx, &by, &sum); err != nil {
			panic(err)
		}
		fmt.Printf("  super-bin [%d][%d]: %d events\n", bx, by, sum)
	}
	if err := rebin.Err(); err != nil {
		panic(err)
	}
	rebin.Close()

	// WCS transformation (§7.2.1): linear transform + scaling from
	// pixel to world coordinates.
	mustRun(`
		CREATE ARRAY m (i INTEGER DIMENSION[2], j INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0);
		SET m[0][0].v = (0.99); SET m[1][1].v = (0.99);
		SET m[0][1].v = (0.01); SET m[1][0].v = (-0.01);
		CREATE ARRAY ref (i INTEGER DIMENSION[2], v FLOAT DEFAULT 128.0);
		CREATE ARRAY sc (i INTEGER DIMENSION[2], v FLOAT DEFAULT 0.0025);
		ALTER ARRAY obs ADD wcs_x FLOAT;
		ALTER ARRAY obs ADD wcs_y FLOAT;
		UPDATE obs SET
			wcs_x = (SELECT sc[0].v * (m[0][0].v * (obs.x1 - ref[0].v) + m[0][1].v * (obs.x2 - ref[1].v)) FROM m, ref, sc),
			wcs_y = (SELECT sc[1].v * (m[1][0].v * (obs.x1 - ref[0].v) + m[1][1].v * (obs.x2 - ref[1].v)) FROM m, ref, sc);
	`, nil)
	corner, _ := s.RunContext(ctx, `SELECT wcs_x, wcs_y FROM obs WHERE x1 = 0 AND x2 = 0`, nil)
	center, _ := s.RunContext(ctx, `SELECT wcs_x, wcs_y FROM obs WHERE x1 = 128 AND x2 = 128`, nil)
	fmt.Printf("WCS: corner (0,0) -> (%.4f, %.4f); reference pixel -> (%.4f, %.4f)\n",
		corner.Get(0, 0).AsFloat(), corner.Get(0, 1).AsFloat(),
		center.Get(0, 0).AsFloat(), center.Get(0, 1).AsFloat())
}
