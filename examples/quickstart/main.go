// Quickstart: arrays as first-class citizens — create, update, slice,
// tile and coerce, following the running example of the SciQL paper
// (§3–§5), driven through the context-aware streaming API (Rows
// cursors, prepared statements).
package main

import (
	"context"
	"fmt"

	"repro/sciql"
)

func main() {
	ctx := context.Background()
	db := sciql.Open()

	// §3.1: a 4x4 zero-initialized matrix with named dimensions.
	db.MustExec(`
		CREATE ARRAY matrix (
			x INTEGER DIMENSION[4],
			y INTEGER DIMENSION[4],
			v FLOAT DEFAULT 0.0)`)

	// §3.2: guarded update — the first matching predicate dictates the
	// cell value.
	db.MustExec(`
		UPDATE matrix SET v = CASE
			WHEN x > y THEN x + y
			WHEN x < y THEN x - y
			ELSE 0 END`)

	// The streaming cursor API: rows are pulled from the scan as it
	// runs; canceling ctx would abort it mid-flight.
	fmt.Println("matrix after the guarded update (streamed):")
	rows, err := db.QueryContext(ctx, `SELECT x, y, v FROM matrix WHERE v <> 0`)
	if err != nil {
		panic(err)
	}
	for rows.Next() {
		var x, y int64
		var v float64
		if err := rows.Scan(&x, &y, &v); err != nil {
			panic(err)
		}
		fmt.Printf("  matrix[%d][%d] = %g\n", x, y, v)
	}
	if err := rows.Err(); err != nil {
		panic(err)
	}
	rows.Close()

	// Prepared statements parse and plan once; each execution just
	// binds the ?name parameters.
	probe, err := db.Prepare(`SELECT v FROM matrix WHERE x = ?x AND y = ?y`)
	if err != nil {
		panic(err)
	}
	for _, xy := range [][2]int64{{1, 0}, {2, 1}, {3, 2}} {
		rs, err := probe.Query(sciql.Int("x", xy[0]), sciql.Int("y", xy[1]))
		if err != nil {
			panic(err)
		}
		fmt.Printf("probe matrix[%d][%d] = %s\n", xy[0], xy[1], rs.Get(0, 0))
	}

	// §4.2: array slicing.
	fmt.Println("top-left 2x2 slab:")
	fmt.Println(db.MustQuery(`SELECT matrix[0:2][0:2].v`))

	// §4.4: structural grouping. Overlapping 2x2 tiles anchor at every
	// valid cell — 16 groups on a 4x4 matrix (Fig. 3).
	fmt.Println("overlapping 2x2 tile averages (16 anchors):")
	fmt.Println(db.MustQuery(`
		SELECT [x], [y], AVG(v) FROM matrix
		GROUP BY matrix[x:x+2][y:y+2]`))

	// DISTINCT tiles are mutually exclusive — 4 groups.
	fmt.Println("DISTINCT 2x2 tile averages (4 non-overlapping tiles):")
	fmt.Println(db.MustQuery(`
		SELECT [x], [y], AVG(v) FROM matrix
		GROUP BY DISTINCT matrix[x:x+2][y:y+2]`))

	// §5.2: dimension reduction — re-grid 4x4 into 2x2 by averaging.
	db.MustExec(`
		CREATE ARRAY tmp (x INTEGER DIMENSION, y INTEGER DIMENSION, v FLOAT);
		INSERT INTO tmp SELECT x, y, AVG(v) FROM matrix
		GROUP BY DISTINCT matrix[x:x+2][y:y+2]`)
	fmt.Println("re-gridded array:")
	fmt.Println(db.MustQuery(`SELECT x, y, v FROM tmp`))

	// §3.3: the TABLE ⇄ ARRAY coercion. Any table with candidate-key
	// columns can be viewed as a sparse array.
	db.MustExec(`
		CREATE TABLE mtable (x INTEGER, y INTEGER, v FLOAT);
		INSERT INTO mtable VALUES (0, 0, 1.5), (2, 3, 4.5)`)
	arr, err := db.QueryArray(`SELECT [x], [y], v FROM mtable`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("coerced array: %d dims, %d cells, scheme=%s\n",
		arr.NumDims(), arr.Len(), arr.Scheme())

	// §6.1: white-box array-producing function.
	db.MustExec(`
		CREATE FUNCTION transpose (a ARRAY (i INTEGER DIMENSION, j INTEGER DIMENSION, v FLOAT))
		RETURNS ARRAY (i INTEGER DIMENSION, j INTEGER DIMENSION, v FLOAT)
		BEGIN RETURN SELECT [j],[i], v FROM a; END`)
	fmt.Println("transpose(matrix):")
	fmt.Println(db.MustQuery(`SELECT transpose(matrix[*][*])`))
}
