// Seismology: the §7.3 SEED use cases — write an mSEED-lite volume,
// attach it through the data vault, retrieve waveforms by station and
// time window, detect gaps and spikes in the time series, and compute
// trailing moving averages with structural grouping.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/vault/mseed"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "sciql-seis")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// A volume with three station records: 1 Hz sampling (1e6 µs),
	// injected gaps and spikes.
	const interval = 1_000_000
	w1 := workload.NewWaveform("AASN", 3600, 0, interval, 4, 6, 1)
	w2 := workload.NewWaveform("ABSN", 3600, 0, interval, 2, 3, 2)
	w3 := workload.NewWaveform("ACSN", 3600, 0, interval, 0, 0, 3)
	path := filepath.Join(dir, "day.mseed")
	err = mseed.WriteVolume(path, []*mseed.Record{w1.ToRecord(1), w2.ToRecord(2), w3.ToRecord(3)})
	if err != nil {
		panic(err)
	}

	s := core.NewSession()
	if _, err := s.Vault.Register(path, "", "mSeed"); err != nil {
		panic(err)
	}
	// Header-only sample count (the vault's lazy metadata path).
	n, err := s.Vault.Count(path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("vault peek: %d samples across the volume (headers only)\n", n)

	if err := s.Vault.AttachMSEED(path, s.Engine.Cat); err != nil {
		panic(err)
	}

	// §7.3.1: retrieval — records per station with nested waveforms.
	rs, err := s.Run(`SELECT seqnr, station, quality FROM mSeed`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("attached mSEED records:")
	fmt.Print(rs)

	// Working time-series array for the cleansing queries (the AASN
	// waveform, which carries 4 gaps and 6 spikes).
	if _, err := s.LoadWaveform("samples", w1); err != nil {
		panic(err)
	}

	// §7.3.2: gap detection via next() over the sparse time dimension.
	gaps, err := s.Run(`
		SELECT [time], next(time) - time FROM samples
		WHERE next(time) - time BETWEEN ?gap_min AND ?gap_max`,
		map[string]value.Value{
			"gap_min": value.NewInt(2 * interval),
			"gap_max": value.NewInt(100 * interval),
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("gap detection: found %d gaps (generator injected %d)\n",
		gaps.NumRows(), len(w1.GapStarts))

	// §7.3.3: spike detection — threshold on the jump to the next
	// sample, then retrieve the ±100-sample neighborhood of the first.
	spikes, err := s.Run(`
		SELECT [time], data FROM samples
		WHERE ABS(data - next(data)) > ?T`,
		map[string]value.Value{"T": value.NewFloat(4)})
	if err != nil {
		panic(err)
	}
	// Every spike produces two large jumps (onto and off the burst),
	// so the threshold flags 2 samples per injected spike.
	fmt.Printf("spike detection: flagged %d jump points around %d injected spikes\n",
		spikes.NumRows(), len(w1.SpikeTimes))
	if spikes.NumRows() > 0 {
		t0 := spikes.Get(0, 0).I
		window, err := s.Run(fmt.Sprintf(`SELECT count(*) FROM samples[%d:%d]`,
			t0-100*interval, t0+100*interval), nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("neighborhood of first spike: %s samples in ±100s window\n", window.Get(0, 0))
	}

	// §7.3.4: trailing moving average over 3 samples via tiling; the
	// AVG semantics shorten the window at the series edge.
	mov, err := s.Run(`
		SELECT [time], data, AVG(samples[time-`+fmt.Sprint(2*interval)+`:time+1].data) AS movavg
		FROM samples
		GROUP BY samples[time-`+fmt.Sprint(2*interval)+`:time+1]
		ORDER BY time LIMIT 5`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("3-sample trailing moving average (first 5 samples):")
	fmt.Print(mov)
}
