// Seismology: the §7.3 SEED use cases — write an mSEED-lite volume,
// attach it through the data vault, retrieve waveforms by station and
// time window, detect gaps and spikes in the time series, and compute
// trailing moving averages with structural grouping. Queries run
// through the context-aware public API; the window retrieval uses a
// prepared statement with ?lo/?hi slice parameters instead of
// formatting SQL per window.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/vault/mseed"
	"repro/internal/workload"
	"repro/sciql"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "sciql-seis")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// A volume with three station records: 1 Hz sampling (1e6 µs),
	// injected gaps and spikes.
	const interval = 1_000_000
	w1 := workload.NewWaveform("AASN", 3600, 0, interval, 4, 6, 1)
	w2 := workload.NewWaveform("ABSN", 3600, 0, interval, 2, 3, 2)
	w3 := workload.NewWaveform("ACSN", 3600, 0, interval, 0, 0, 3)
	path := filepath.Join(dir, "day.mseed")
	err = mseed.WriteVolume(path, []*mseed.Record{w1.ToRecord(1), w2.ToRecord(2), w3.ToRecord(3)})
	if err != nil {
		panic(err)
	}

	s := core.NewSession()
	if _, err := s.Vault.Register(path, "", "mSeed"); err != nil {
		panic(err)
	}
	// Header-only sample count (the vault's lazy metadata path).
	n, err := s.Vault.Count(path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("vault peek: %d samples across the volume (headers only)\n", n)

	if err := s.Vault.AttachMSEED(path, s.Engine.Cat); err != nil {
		panic(err)
	}

	// §7.3.1: retrieval — records per station with nested waveforms,
	// streamed through a Rows cursor.
	db := s.DB()
	rows, err := db.QueryContext(ctx, `SELECT seqnr, station, quality FROM mSeed`)
	if err != nil {
		panic(err)
	}
	fmt.Println("attached mSEED records:")
	for rows.Next() {
		var seqnr int64
		var station, quality string
		if err := rows.Scan(&seqnr, &station, &quality); err != nil {
			panic(err)
		}
		fmt.Printf("  seq %d  station %-4s quality %s\n", seqnr, station, quality)
	}
	if err := rows.Err(); err != nil {
		panic(err)
	}
	rows.Close()

	// Working time-series array for the cleansing queries (the AASN
	// waveform, which carries 4 gaps and 6 spikes).
	if _, err := s.LoadWaveform("samples", w1); err != nil {
		panic(err)
	}

	// §7.3.2: gap detection via next() over the sparse time dimension.
	gaps, err := s.RunContext(ctx, `
		SELECT [time], next(time) - time FROM samples
		WHERE next(time) - time BETWEEN ?gap_min AND ?gap_max`,
		map[string]value.Value{
			"gap_min": value.NewInt(2 * interval),
			"gap_max": value.NewInt(100 * interval),
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("gap detection: found %d gaps (generator injected %d)\n",
		gaps.NumRows(), len(w1.GapStarts))

	// §7.3.3: spike detection — threshold on the jump to the next
	// sample, then retrieve the ±100-sample neighborhood of the first.
	spikes, err := s.RunContext(ctx, `
		SELECT [time], data FROM samples
		WHERE ABS(data - next(data)) > ?T`,
		map[string]value.Value{"T": value.NewFloat(4)})
	if err != nil {
		panic(err)
	}
	// Every spike produces two large jumps (onto and off the burst),
	// so the threshold flags 2 samples per injected spike.
	fmt.Printf("spike detection: flagged %d jump points around %d injected spikes\n",
		spikes.NumRows(), len(w1.SpikeTimes))
	if spikes.NumRows() > 0 {
		// A prepared statement binds the window bounds as parameters —
		// parsed and planned once, re-executed per spike.
		windowStmt, err := db.Prepare(`SELECT count(*) FROM samples[?lo:?hi]`)
		if err != nil {
			panic(err)
		}
		for i := 0; i < spikes.NumRows() && i < 3; i++ {
			t0 := spikes.Get(i, 0).I
			window, err := windowStmt.Query(
				sciql.Int("lo", t0-100*interval), sciql.Int("hi", t0+100*interval))
			if err != nil {
				panic(err)
			}
			fmt.Printf("neighborhood of spike at t=%d: %s samples in ±100s window\n",
				t0, window.Get(0, 0))
		}
	}

	// §7.3.4: trailing moving average over 3 samples via tiling; the
	// AVG semantics shorten the window at the series edge.
	mov, err := s.RunContext(ctx, `
		SELECT [time], data, AVG(samples[time-`+fmt.Sprint(2*interval)+`:time+1].data) AS movavg
		FROM samples
		GROUP BY samples[time-`+fmt.Sprint(2*interval)+`:time+1]
		ORDER BY time LIMIT 5`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("3-sample trailing moving average (first 5 samples):")
	fmt.Print(mov)
}
